package acheron

// Black-box property tests on the public API, using testing/quick to drive
// randomized operation sequences against a reference map.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// quickOp is a generatable operation for property tests.
type quickOp struct {
	Kind  uint8 // 0..3: put, delete, flush, reopen
	Key   uint16
	Value uint16
}

// applyQuickOps runs a generated op sequence against both the engine and a
// map, returning false on any divergence.
func applyQuickOps(t *testing.T, ops []quickOp) bool {
	t.Helper()
	fs := NewMemFS()
	opts := smokeOpts(fs)
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	model := map[uint16]uint16{}
	closed := false
	defer func() {
		if !closed {
			db.Close()
		}
	}()

	key := func(k uint16) []byte { return []byte(fmt.Sprintf("k%05d", k)) }
	val := func(v uint16) []byte {
		b := make([]byte, 10)
		binary.BigEndian.PutUint16(b[8:], v)
		return b
	}

	for i, op := range ops {
		switch op.Kind % 4 {
		case 0:
			if err := db.Put(key(op.Key), val(op.Value)); err != nil {
				t.Fatalf("op %d Put: %v", i, err)
			}
			model[op.Key] = op.Value
		case 1:
			if err := db.Delete(key(op.Key)); err != nil {
				t.Fatalf("op %d Delete: %v", i, err)
			}
			delete(model, op.Key)
		case 2:
			if err := db.Flush(); err != nil {
				t.Fatalf("op %d Flush: %v", i, err)
			}
			if err := db.WaitIdle(); err != nil {
				t.Fatalf("op %d WaitIdle: %v", i, err)
			}
		case 3:
			if err := db.Close(); err != nil {
				t.Fatalf("op %d Close: %v", i, err)
			}
			db, err = Open("db", opts)
			if err != nil {
				t.Fatalf("op %d reopen: %v", i, err)
			}
		}
	}

	// Compare final state by scan.
	var wantKeys []uint16
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Slice(wantKeys, func(i, j int) bool { return wantKeys[i] < wantKeys[j] })
	it, err := db.NewIter(IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	i := 0
	for ok := it.First(); ok; ok = it.Next() {
		if i >= len(wantKeys) {
			t.Logf("extra key %q", it.Key())
			return false
		}
		if !bytes.Equal(it.Key(), key(wantKeys[i])) {
			t.Logf("key %d: engine %q, model %q", i, it.Key(), key(wantKeys[i]))
			return false
		}
		if got := binary.BigEndian.Uint16(it.Value()[8:]); got != model[wantKeys[i]] {
			t.Logf("value mismatch at %q", it.Key())
			return false
		}
		i++
	}
	if i != len(wantKeys) {
		t.Logf("engine has %d keys, model %d", i, len(wantKeys))
		return false
	}
	closed = true
	return db.Close() == nil
}

// TestQuickEngineMatchesModel is the headline property: any sequence of
// puts, deletes, flushes and reopens leaves the engine equivalent to a map.
func TestQuickEngineMatchesModel(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 30,
		Values: func(values []reflect.Value, rng *rand.Rand) {
			n := 50 + rng.Intn(400)
			ops := make([]quickOp, n)
			for i := range ops {
				ops[i] = quickOp{
					Kind:  uint8(rng.Intn(256)),
					Key:   uint16(rng.Intn(300)),
					Value: uint16(rng.Intn(1 << 16)),
				}
			}
			values[0] = reflect.ValueOf(ops)
		},
	}
	f := func(ops []quickOp) bool { return applyQuickOps(t, ops) }
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIterSeekGEMatchesSortedModel: SeekGE on the public iterator
// always lands on the first live key >= target.
func TestQuickIterSeekGEMatchesSortedModel(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", smokeOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	rng := rand.New(rand.NewSource(77))
	live := map[string]bool{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("k%05d", rng.Intn(5000))
		if rng.Float64() < 0.3 {
			if err := db.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
		} else {
			if err := db.Put([]byte(k), []byte("v")); err != nil {
				t.Fatal(err)
			}
			live[k] = true
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	var keys []string
	for k := range live {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	it, err := db.NewIter(IterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer it.Close()
	for trial := 0; trial < 500; trial++ {
		target := fmt.Sprintf("k%05d", rng.Intn(5200))
		want := sort.SearchStrings(keys, target)
		got := it.SeekGE([]byte(target))
		if want == len(keys) {
			if got {
				t.Fatalf("SeekGE(%q) should be invalid, landed on %q", target, it.Key())
			}
			continue
		}
		if !got || string(it.Key()) != keys[want] {
			t.Fatalf("SeekGE(%q) = %q (valid=%v), want %q", target, it.Key(), got, keys[want])
		}
	}
}

// TestDiskFootprintBoundedUnderChurn: with FADE active, endless
// update/delete churn over a fixed key set must not grow the store without
// bound.
func TestDiskFootprintBoundedUnderChurn(t *testing.T) {
	fs := NewMemFS()
	clk := &LogicalClock{}
	opts := smokeOpts(fs)
	opts.Clock = clk
	opts.Compaction.DPT = 2000
	opts.Compaction.Picker = PickFADE
	db, err := Open("db", opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	var peak uint64
	for round := 0; round < 6; round++ {
		for i := 0; i < 3000; i++ {
			clk.Advance(1)
			k := []byte(fmt.Sprintf("k%04d", i%500))
			if i%3 == 2 {
				if err := db.Delete(k); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := db.Put(k, make([]byte, 100)); err != nil {
					t.Fatal(err)
				}
			}
			if i%128 == 0 {
				if err := db.WaitIdle(); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := db.WaitIdle(); err != nil {
			t.Fatal(err)
		}
		size := db.DiskSize()
		if size > peak {
			peak = size
		}
	}
	// 500 live keys x ~110 bytes is ~55 KiB of logical data; allow a
	// generous amplification factor, but not unbounded growth.
	if peak > 60*55<<10 {
		t.Fatalf("disk footprint grew to %d bytes under churn", peak)
	}
}

// TestLevelsReporting spot-checks the introspection API.
func TestLevelsReporting(t *testing.T) {
	fs := NewMemFS()
	db, err := Open("db", smokeOpts(fs))
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5000; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%06d", i)), make([]byte, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.CompactAll(); err != nil {
		t.Fatal(err)
	}
	levels := db.Levels()
	var total uint64
	deepest := -1
	for l, li := range levels {
		total += li.Bytes
		if li.Files > 0 {
			deepest = l
		}
	}
	if deepest < 1 {
		t.Fatalf("CompactAll left everything at L%d", deepest)
	}
	if total != db.DiskSize() {
		t.Fatalf("Levels sum %d != DiskSize %d", total, db.DiskSize())
	}
}
