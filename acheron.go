// Package acheron is a log-structured merge (LSM) storage engine with
// timely, persistent deletes — a from-scratch Go reproduction of
// "Acheron: Persisting Tombstones in LSM Engines" (SIGMOD 2023) and the
// Lethe delete-aware LSM design it demonstrates.
//
// Classic LSM engines realize a delete by writing a tombstone and give no
// bound on when the deleted data physically disappears. Acheron adds:
//
//   - A delete persistence threshold (DPT): an upper bound, set in
//     Options.Compaction.DPT, on the time between issuing a delete and the
//     physical erasure of every shadowed version plus the tombstone itself.
//   - FADE compaction: the DPT is partitioned into per-level TTLs; a file
//     whose oldest tombstone overstays its budget triggers a delete-driven
//     compaction, and saturated levels prefer evicting tombstone-dense
//     files.
//   - KiWi secondary range deletes: values carry a secondary "delete key"
//     (Options.DeleteKeyFunc, e.g. a timestamp); with Options.PagesPerTile
//     > 1, sstables weave pages ordered by delete key inside sort-ordered
//     tiles, so DeleteSecondaryRange can drop whole pages — or whole files
//     — without a full tree merge.
//
// # Quick start
//
//	db, err := acheron.Open(dir, acheron.Options{
//		Compaction: acheron.CompactionOptions{DPT: acheron.Duration(time.Hour)},
//	})
//	if err != nil { ... }
//	defer db.Close()
//	db.Put([]byte("k"), []byte("v"))
//	v, err := db.Get([]byte("k"))
//	db.Delete([]byte("k")) // physically erased within one hour
//
// The engine is durable (write-ahead log + manifest), supports snapshots
// and range iteration, and exposes detailed statistics including the
// per-tombstone persistence latency distribution.
//
// Range scans use a per-version cached sorted view (REMIX-style) so
// steady-state iteration advances a single cursor instead of a k-way heap;
// disable with Options.DisableReadViews, tune with
// Options.ReadViewAnchorInterval and Options.ReadViewMaxEntries. With
// Options.PrefixBloomLength set, sstables also carry prefix Bloom filters
// and prefix scans (IterOptions.Prefix) skip non-matching tables without
// opening them.
package acheron

import (
	"repro/internal/admission"
	"repro/internal/base"
	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/event"
	"repro/internal/metrics"
	"repro/internal/shard"
	"repro/internal/vfs"
)

// DB is an open Acheron store. See the core engine for the full method
// set: Put, Get, Delete, DeleteSecondaryRange, NewIter, NewSnapshot, Flush,
// CompactAll, MaintenanceStep, WaitIdle, Stats, Levels, DiskSize, Close.
// Every foreground operation also has a context-honoring variant (PutCtx,
// GetCtx, DeleteCtx, ApplyCtx, CheckpointCtx, CompactAllCtx, ...) whose
// deadline/cancel is observed inside admission control, write stalls, and
// the group-commit queue.
type DB = core.DB

// Options configure a store; the zero value works.
type Options = core.Options

// IterOptions configure a range iterator.
type IterOptions = core.IterOptions

// Iter iterates live keys in ascending order.
type Iter = core.Iter

// Snapshot pins a point-in-time view.
type Snapshot = core.Snapshot

// Batch accumulates writes committed atomically by DB.Apply.
type Batch = core.Batch

// Stats exposes the engine's counters and histograms, including
// PersistenceLatency — the paper's headline metric.
type Stats = core.Stats

// JobInfo describes one completed maintenance job — id, kind, trigger,
// levels, run window, bytes — as returned by DB.RecentMaintJobs.
type JobInfo = core.JobInfo

// JobKind classifies maintenance jobs (flush, compaction, eager range
// delete).
type JobKind = core.JobKind

// CompactionOptions select the layout policy, picker, size ratio and the
// DPT.
type CompactionOptions = compaction.Options

// CompactionPolicy is the layout-policy abstraction: it decides how many
// sorted runs each level may hold, when a level is saturated, and which
// files compact next. All built-in policies share the FADE machinery, so
// the delete-persistence guarantee (DPT) holds under any of them.
type CompactionPolicy = compaction.Policy

// PolicyKind selects a built-in compaction policy in CompactionOptions.
type PolicyKind = compaction.PolicyKind

// Built-in compaction policies.
const (
	// PolicyDefault resolves from the deprecated Shape knob (Leveling →
	// PolicyLeveled, Tiering → PolicySizeTiered), keeping existing
	// configurations working unchanged.
	PolicyDefault = compaction.PolicyDefault
	// PolicyLeveled keeps one sorted run per level below L0.
	PolicyLeveled = compaction.PolicyLeveled
	// PolicySizeTiered allows SizeRatio runs per level, merging a level
	// wholesale when it fills.
	PolicySizeTiered = compaction.PolicySizeTiered
	// PolicyLazyLeveling tiers the upper levels and levels the last one
	// (the Dostoevsky hybrid).
	PolicyLazyLeveling = compaction.PolicyLazyLeveling
)

// ParsePolicyKind parses a policy name ("leveled", "size-tiered",
// "lazy-leveling", plus common aliases) into a PolicyKind, reporting
// whether the name was recognized.
func ParsePolicyKind(s string) (PolicyKind, bool) { return compaction.ParsePolicyKind(s) }

// NewLeveledPolicy returns the classic leveling policy for o.
func NewLeveledPolicy(o CompactionOptions) CompactionPolicy { return compaction.NewLeveled(o) }

// NewSizeTieredPolicy returns the size-tiering policy for o.
func NewSizeTieredPolicy(o CompactionOptions) CompactionPolicy { return compaction.NewSizeTiered(o) }

// NewLazyLevelingPolicy returns the lazy-leveling policy for o.
func NewLazyLevelingPolicy(o CompactionOptions) CompactionPolicy {
	return compaction.NewLazyLeveling(o)
}

// Event is one structured trace event: an operation begin/end, a write
// stall, a maintenance-job lifecycle step, a file create/delete, or a
// checkpoint. Events are delivered to Options.EventListener and buffered in
// a ring readable via DB.RecentEvents / DB.EventsSince.
type Event = event.Event

// EventType discriminates trace events.
type EventType = event.Type

// EventListener receives every trace event synchronously at the emit site.
// It must be fast and must not call back into the DB.
type EventListener = event.Listener

// Trace event types.
const (
	EventOpBegin         = event.OpBegin
	EventOpEnd           = event.OpEnd
	EventStallBegin      = event.StallBegin
	EventStallEnd        = event.StallEnd
	EventStallTimeout    = event.StallTimeout
	EventAdmissionReject = event.AdmissionReject
	EventJobClaim        = event.JobClaim
	EventJobCommit       = event.JobCommit
	EventJobRetry        = event.JobRetry
	EventJobError        = event.JobError
	EventFileCreate      = event.FileCreate
	EventFileDelete      = event.FileDelete
	EventCheckpoint      = event.Checkpoint
)

// MetricsRegistry names every engine metric for exposition; DB.Registry
// returns the store's instance, which renders Prometheus text (WriteTo) or
// a JSON document (WriteJSON).
type MetricsRegistry = metrics.Registry

// Compaction shapes.
//
// Deprecated: Shape is the legacy layout knob; set
// CompactionOptions.Policy (PolicyLeveled, PolicySizeTiered,
// PolicyLazyLeveling) instead. Leveling and Tiering map onto PolicyLeveled
// and PolicySizeTiered when Policy is left at PolicyDefault, so existing
// code keeps its exact behaviour.
const (
	// Leveling keeps one sorted run per level.
	Leveling = compaction.Leveling
	// Tiering allows SizeRatio runs per level.
	Tiering = compaction.Tiering
)

// Compaction pickers.
const (
	// PickMinOverlap is the delete-oblivious baseline.
	PickMinOverlap = compaction.PickMinOverlap
	// PickFADE is the delete-aware picker (expired TTLs first, then
	// tombstone density).
	PickFADE = compaction.PickFADE
	// PickOldestTombstone is the FADE tie-break ablation.
	PickOldestTombstone = compaction.PickOldestTombstone
)

// TTL split strategies (how the DPT is divided across levels).
const (
	// SplitExponential is the Lethe allocation (level i gets ∝ T^i).
	SplitExponential = compaction.SplitExponential
	// SplitUniform divides the DPT evenly (ablation).
	SplitUniform = compaction.SplitUniform
)

// Timestamp is a point in engine time (nanoseconds on the store's clock).
type Timestamp = base.Timestamp

// Duration is a span of engine time.
type Duration = base.Duration

// DeleteKey is the secondary key targeted by DeleteSecondaryRange.
type DeleteKey = base.DeleteKey

// DeleteKeyExtractor derives a DeleteKey from a record's value.
type DeleteKeyExtractor = base.DeleteKeyExtractor

// Clock abstracts the engine's time source.
type Clock = base.Clock

// LogicalClock is a deterministic, manually advanced Clock for tests and
// benchmarks.
type LogicalClock = base.LogicalClock

// FS abstracts the filesystem beneath the store.
type FS = vfs.FS

// NewMemFS returns an in-memory filesystem with byte-level accounting,
// suitable for tests and amplification measurements.
func NewMemFS() *vfs.MemFS { return vfs.NewMemFS() }

// ErrNotFound is returned by Get for missing or deleted keys.
var ErrNotFound = core.ErrNotFound

// ErrClosed is returned by operations issued against a closed store,
// including writers still queued for admission or group commit when Close
// ran. Match with errors.Is.
var ErrClosed = core.ErrClosed

// ErrBackgroundError wraps every write rejected because a permanent
// background failure (ENOSPC, corruption, retry exhaustion) turned the
// store read-only. The cause stays in the chain; DB.BackgroundError
// returns it, and reopening the store is the only recovery.
var ErrBackgroundError = core.ErrBackgroundError

// ErrOverloaded wraps every operation rejected by admission control
// (Options.Admission): the pressure gate shed it, or its projected token
// wait exceeded the context deadline or the configured maximum queue time.
// Rejections fail in microseconds by design; match with errors.Is. When a
// context deadline caused the rejection the chain also wraps
// context.DeadlineExceeded.
var ErrOverloaded = core.ErrOverloaded

// AdmissionConfig configures token-bucket admission control; set it in
// Options.Admission. The zero value disables the gate.
type AdmissionConfig = admission.Config

// AdmissionController is a live admission gate; DB.Admission returns the
// store's instance (nil when Options.Admission is disabled).
type AdmissionController = admission.Controller

// Admission classes: reads and writes draw from independent token buckets.
const (
	AdmissionRead  = admission.ClassRead
	AdmissionWrite = admission.ClassWrite
)

// NewBatch returns an empty write batch.
func NewBatch() *Batch { return core.NewBatch() }

// Open opens (creating if necessary) a store rooted at dirname.
func Open(dirname string, opts Options) (*DB, error) {
	return core.Open(dirname, opts)
}

// ShardedDB partitions the keyspace across Options.Shards independent
// engine instances: hash routing for point operations, merged cross-shard
// iterators for scans, fan-out for secondary range deletes, batches, and
// lifecycle operations. Each shard has its own WAL, memtables, levels,
// maintenance executors, and admission controller, and FADE enforces the
// delete persistence threshold per shard.
type ShardedDB = shard.Router

// ShardedSnapshot pins a per-shard snapshot vector (a consistent point on
// every shard, not one global cut).
type ShardedSnapshot = shard.Snapshot

// ShardedIter iterates live keys across all shards in ascending order,
// merged through the engine's k-way heap.
type ShardedIter = shard.Iter

// ShardedIterOptions configure a cross-shard iterator.
type ShardedIterOptions = shard.IterOptions

// ShardedOpen opens (creating if necessary) a sharded store rooted at
// dirname. Options.Shards picks the shard count for a new store; on reopen
// 0 adopts the persisted count, and any other value must match it. With
// Shards <= 1 the store behaves exactly like a single engine behind the
// router API.
func ShardedOpen(dirname string, opts Options) (*ShardedDB, error) {
	return shard.Open(dirname, opts)
}
