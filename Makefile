GO ?= go

# Race-sensitive packages: everything with shared mutable state under
# concurrent access. The -run filter matches the dedicated concurrency
# tests so the race target stays fast enough for CI.
RACE_PKGS = ./internal/core/... ./internal/cache/... ./internal/memtable/... \
            ./internal/skiplist/... ./internal/vfs/... ./internal/metrics/... \
            ./internal/manifest/... ./internal/compaction/... ./internal/event/... \
            ./internal/admission/... ./internal/shard/... ./internal/server/... ./internal/readview/... \
            ./internal/wire/...
RACE_RUN  = 'Concurrent|Parallel|Stress|Scheduler|InFlight|BackgroundError|FailingFlush'

# Decode-hardening fuzz targets and their per-target CI time budget.
FUZZTIME ?= 20s

.PHONY: all build test race faults fuzz-smoke observe lint lint-strict vet acheronlint bench bench-policy overload bench-overload bench-scan serve bench-serve clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the concurrency-focused tests under the race detector. This is
# the CI gate for data races in the commit pipeline, table cache, memtable,
# and skiplist.
race:
	$(GO) test -race -run $(RACE_RUN) $(RACE_PKGS)

# faults runs the fault-injection and crash-recovery suites: the randomized
# crash torture matrix (fixed seeds, deterministic) plus the background-error
# state-machine tests. -count=1 defeats the test cache so the errorfs rules
# actually execute on every run.
faults:
	$(GO) test -count=1 -run 'TestCrashRecoveryTorture|TestStalledWriter|TestTransient|TestCloseDuring|TestBackoffDelay|TestWALCorruptionLocated|TestManifestCorruptionLocated' ./internal/core
	$(GO) test -count=1 ./internal/vfs/...

# lint = stock go vet + the engine-specific acheronlint suite
# (rawkeycompare, lockheld, closecheck, seqnumlit, lockorder, atomicmix,
# condloop, errsentinel).
lint: vet acheronlint

vet:
	$(GO) vet ./...

acheronlint:
	$(GO) run ./tools/acheronlint ./...

# lint-strict runs acheronlint through `go vet -vettool`, which analyzes the
# full build graph — test files included — and carries cross-package facts
# (lock-order summaries, atomic-field discipline, cond-mutex bindings)
# through the go command's .vetx plumbing.
lint-strict:
	$(GO) build -o bin/acheronlint ./tools/acheronlint
	$(GO) vet -vettool=$(CURDIR)/bin/acheronlint ./...

# fuzz-smoke gives each decode fuzzer a short budget on top of the checked-in
# corpus under testdata/fuzz/. Catches format-decoder panics (block entries,
# WAL frames, sstable footers/properties) before they reach a release.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzBlockIter -fuzztime $(FUZZTIME) ./internal/block/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzSSTableFooterProps -fuzztime $(FUZZTIME) ./internal/sstable/
	$(GO) test -run '^$$' -fuzz FuzzPrefixBloom -fuzztime $(FUZZTIME) ./internal/sstable/
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime $(FUZZTIME) ./internal/wire/

# observe runs the observability gates: registry/tracer unit tests, the
# exposition golden files, and the metrics-accounting tests (cache, bloom,
# model-based differential).
observe:
	$(GO) test ./internal/metrics/ ./internal/event/
	$(GO) test -run 'TestModelDifferentialStress|TestCacheAccountingConcurrent|TestBloomAccountingGroundTruth' ./internal/core/

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# bench-policy regenerates the compaction policy x workload sweep (C5) and
# records the result tables + write-path metrics in BENCH_policy.json so the
# policy trade-off table's trajectory is tracked across PRs. The wa/sa and
# delete-persistence columns are deterministic; reads_s is wall clock.
bench-policy:
	$(GO) run ./cmd/acheron-bench -exp C5 -json BENCH_policy.json

# overload is the overload-resilience gate: the deadline/cancellation and
# admission-control suites under the race detector (random cancels, bounded
# Close, cancelled-commit atomicity under fault injection), then a small-scale
# C6 smoke proving goodput holds as offered load passes the admitted rate.
overload:
	$(GO) test -race -count=1 -run 'TestOverloadStress|TestStallDeadline|TestMaintenanceBarrier|TestCancelledCommit' ./internal/core
	$(GO) test -race -count=1 ./internal/admission/
	$(GO) run ./cmd/acheron-bench -exp C6 -scale small

# serve is the network-service gate: sharded differential + DPT-sweep and
# server chaos tests under the race detector, wire decode units plus a short
# FuzzWireDecode budget, then a small-scale C7 smoke driving a live acherond
# through real TCP clients.
serve:
	$(GO) test -race -count=1 -run 'TestShardedModelDifferentialStress|TestDPTShardSweepStress|TestServerStressChaosClients' ./internal/shard/ ./internal/server/
	$(GO) test -count=1 ./internal/wire/ ./internal/server/
	$(GO) test -run '^$$' -fuzz FuzzWireDecode -fuzztime $(FUZZTIME) ./internal/wire/
	$(GO) run ./cmd/acheron-bench -exp C7 -scale small

# bench-serve regenerates the C7 served-saturation experiment (aggregate
# sync-put kops/s vs shard count x connection count through a live acherond)
# and records the tables + per-shard WAL metrics in BENCH_serve.json.
# Wall-clock numbers vary run to run; the shape (kops_s rising monotonically
# with shards at 8+ connections) should not.
bench-serve:
	$(GO) run ./cmd/acheron-bench -exp C7 -json BENCH_serve.json

# bench-overload regenerates the C6 overload experiment (goodput + rejection
# latency vs offered load at 1x/2x/4x the admitted write rate) and records
# the tables + admission metrics in BENCH_overload.json. Wall-clock numbers
# vary run to run; the shape (flat goodput, microsecond rej_p50) should not.
bench-overload:
	$(GO) run ./cmd/acheron-bench -exp C6 -json BENCH_overload.json

# bench-scan regenerates the iterator-throughput experiment (C4): cached
# sorted views vs the heap merge on scan/delete-heavy trees, and prefix
# bloom table skipping, recorded in BENCH_scan.json.
bench-scan:
	$(GO) run ./cmd/acheron-bench -exp C4 -json BENCH_scan.json

clean:
	$(GO) clean ./...
