GO ?= go

# Race-sensitive packages: everything with shared mutable state under
# concurrent access. The -run filter matches the dedicated concurrency
# tests so the race target stays fast enough for CI.
RACE_PKGS = ./internal/core/... ./internal/cache/... ./internal/memtable/... \
            ./internal/skiplist/... ./internal/vfs/... ./internal/metrics/... \
            ./internal/manifest/... ./internal/compaction/...
RACE_RUN  = 'Concurrent|Parallel|Stress|Scheduler|InFlight'

.PHONY: all build test race lint vet acheronlint bench clean

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# race runs the concurrency-focused tests under the race detector. This is
# the CI gate for data races in the commit pipeline, table cache, memtable,
# and skiplist.
race:
	$(GO) test -race -run $(RACE_RUN) $(RACE_PKGS)

# lint = stock go vet + the engine-specific acheronlint suite
# (rawkeycompare, lockheld, closecheck, seqnumlit).
lint: vet acheronlint

vet:
	$(GO) vet ./...

acheronlint:
	$(GO) run ./tools/acheronlint ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

clean:
	$(GO) clean ./...
