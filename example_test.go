package acheron_test

import (
	"fmt"
	"log"

	acheron "repro"
	"repro/internal/workload"
)

// Example shows basic usage: open an in-memory store, write, read, delete.
func Example() {
	db, err := acheron.Open("example-db", acheron.Options{FS: acheron.NewMemFS()})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("greeting"), []byte("hello"))
	v, _ := db.Get([]byte("greeting"))
	fmt.Printf("%s\n", v)

	db.Delete([]byte("greeting"))
	if _, err := db.Get([]byte("greeting")); err == acheron.ErrNotFound {
		fmt.Println("deleted")
	}
	// Output:
	// hello
	// deleted
}

// ExampleOptions_dpt configures a delete persistence threshold: FADE
// guarantees physical erasure of every delete within the bound.
func ExampleOptions_dpt() {
	clk := &acheron.LogicalClock{}
	db, err := acheron.Open("dpt-db", acheron.Options{
		FS:                     acheron.NewMemFS(),
		Clock:                  clk,
		DisableAutoMaintenance: true,
		Compaction: acheron.CompactionOptions{
			Picker: acheron.PickFADE,
			DPT:    1000, // logical ticks
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("user"), []byte("data"))
	db.Delete([]byte("user"))
	db.Flush()

	// Let the threshold elapse and maintenance run.
	clk.Advance(1200)
	db.WaitIdle()

	st := db.Stats()
	fmt.Printf("persisted=%d within_dpt=%v\n",
		st.TombstonesPersisted.Get(), st.PersistenceLatency.Max() <= 1200)
	// Output:
	// persisted=1 within_dpt=true
}

// ExampleDB_DeleteSecondaryRange demonstrates KiWi secondary range deletes:
// one call removes every record in a delete-key (e.g. timestamp) range.
func ExampleDB_DeleteSecondaryRange() {
	db, err := acheron.Open("kiwi-db", acheron.Options{
		FS:            acheron.NewMemFS(),
		DeleteKeyFunc: workload.ExtractDeleteKey,
		PagesPerTile:  4,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Each value embeds its timestamp as the secondary delete key.
	for ts := uint64(0); ts < 100; ts++ {
		key := fmt.Sprintf("event:%03d", ts)
		db.Put([]byte(key), workload.ValueFor(ts, 32))
	}
	// Drop everything with timestamp < 50.
	db.DeleteSecondaryRange(0, 50)

	it, _ := db.NewIter(acheron.IterOptions{})
	defer it.Close()
	live := 0
	for ok := it.First(); ok; ok = it.Next() {
		live++
	}
	fmt.Printf("live=%d\n", live)
	// Output:
	// live=50
}

// ExampleBatch commits several writes atomically.
func ExampleBatch() {
	db, err := acheron.Open("batch-db", acheron.Options{FS: acheron.NewMemFS()})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	b := acheron.NewBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	b.Delete([]byte("a"))
	if err := db.Apply(b); err != nil {
		log.Fatal(err)
	}
	_, errA := db.Get([]byte("a"))
	vb, _ := db.Get([]byte("b"))
	fmt.Printf("a deleted=%v b=%s\n", errA == acheron.ErrNotFound, vb)
	// Output:
	// a deleted=true b=2
}

// ExampleDB_NewSnapshot pins a consistent view across later writes.
func ExampleDB_NewSnapshot() {
	db, err := acheron.Open("snap-db", acheron.Options{FS: acheron.NewMemFS()})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	db.Put([]byte("k"), []byte("v1"))
	snap := db.NewSnapshot()
	defer snap.Release()
	db.Put([]byte("k"), []byte("v2"))

	old, _ := db.GetAt([]byte("k"), snap)
	cur, _ := db.Get([]byte("k"))
	fmt.Printf("snapshot=%s latest=%s\n", old, cur)
	// Output:
	// snapshot=v1 latest=v2
}
