// Quickstart: open a store, write, read, delete, scan, and inspect stats.
//
//	go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"time"

	acheron "repro"
)

func main() {
	dir, err := os.MkdirTemp("", "acheron-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A one-hour delete persistence threshold: every delete is
	// physically erased from disk within an hour.
	db, err := acheron.Open(dir, acheron.Options{
		Compaction: acheron.CompactionOptions{
			Picker: acheron.PickFADE,
			DPT:    acheron.Duration(time.Hour),
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Writes.
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user:%04d", i)
		value := fmt.Sprintf(`{"name":"user-%d","visits":%d}`, i, i*7%100)
		if err := db.Put([]byte(key), []byte(value)); err != nil {
			log.Fatal(err)
		}
	}

	// Point read.
	v, err := db.Get([]byte("user:0042"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user:0042 = %s\n", v)

	// Delete, then observe ErrNotFound.
	if err := db.Delete([]byte("user:0042")); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Get([]byte("user:0042")); errors.Is(err, acheron.ErrNotFound) {
		fmt.Println("user:0042 deleted (tombstone will persist within the DPT)")
	}

	// Range scan with bounds.
	it, err := db.NewIter(acheron.IterOptions{
		LowerBound: []byte("user:0100"),
		UpperBound: []byte("user:0105"),
	})
	if err != nil {
		log.Fatal(err)
	}
	for ok := it.First(); ok; ok = it.Next() {
		fmt.Printf("  %s = %s\n", it.Key(), it.Value())
	}
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}

	// Snapshot isolation: a snapshot taken now keeps seeing user:0007
	// even after it is deleted.
	snap := db.NewSnapshot()
	if err := db.Delete([]byte("user:0007")); err != nil {
		log.Fatal(err)
	}
	if v, err := db.GetAt([]byte("user:0007"), snap); err == nil {
		fmt.Printf("snapshot still sees user:0007 = %s\n", v)
	}
	snap.Release()

	// Force everything to disk and show the tree.
	if err := db.CompactAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nengine statistics:")
	fmt.Println(db.Stats())
}
