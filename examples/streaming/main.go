// Streaming example: a sliding-window event store with KiWi range deletes.
//
// An ingest pipeline stores events keyed by event id; each value embeds the
// event's timestamp as its secondary delete key. The pipeline retains only
// the most recent window of events: every tick of the retention loop drops
// the oldest slice with a single DeleteSecondaryRange call. With the KiWi
// layout and eager range deletes, whole pages and files are dropped without
// rewriting the tree — compare the bytes rewritten against the same store
// running the naive scan-and-point-delete retention.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"

	acheron "repro"
	"repro/internal/workload"
)

const (
	events     = 60_000
	windowSize = 15_000 // retained events (by timestamp)
	dropEvery  = 5_000  // retention cadence
)

func open(kiwi bool) (*acheron.DB, *acheron.LogicalClock, func() int64) {
	fs := acheron.NewMemFS()
	clk := &acheron.LogicalClock{}
	opts := acheron.Options{
		FS:                     fs,
		Clock:                  clk,
		MemTableBytes:          128 << 10,
		DeleteKeyFunc:          workload.ExtractDeleteKey,
		DisableAutoMaintenance: true,
		Compaction: acheron.CompactionOptions{
			SizeRatio:       4,
			BaseLevelBytes:  512 << 10,
			TargetFileBytes: 128 << 10,
			Picker:          acheron.PickFADE,
			DPT:             windowSize,
		},
	}
	if kiwi {
		opts.PagesPerTile = 4
		opts.EagerRangeDeletes = true
	}
	db, err := acheron.Open("stream-db", opts)
	if err != nil {
		log.Fatal(err)
	}
	rewritten := func() int64 {
		st := db.Stats()
		return st.BytesFlushed.Get() + st.CompactBytesWritten.Get()
	}
	return db, clk, rewritten
}

func run(name string, kiwi bool) {
	db, clk, rewritten := open(kiwi)
	defer db.Close()

	var retentionBytes int64
	dropped := 0
	for i := 0; i < events; i++ {
		ts := uint64(clk.Advance(1))
		key := []byte(fmt.Sprintf("event:%012d", i))
		if err := db.Put(key, workload.ValueFor(ts, 256)); err != nil {
			log.Fatal(err)
		}
		if i%64 == 0 {
			if err := db.WaitIdle(); err != nil {
				log.Fatal(err)
			}
		}
		// Retention: drop everything older than the window.
		if i > 0 && i%dropEvery == 0 && uint64(i) > windowSize {
			lo, hi := uint64(dropped), uint64(i)-windowSize
			before := rewritten()
			if kiwi {
				if err := db.DeleteSecondaryRange(lo, hi); err != nil {
					log.Fatal(err)
				}
			} else {
				// Naive retention: scan and point-delete.
				it, err := db.NewIter(acheron.IterOptions{})
				if err != nil {
					log.Fatal(err)
				}
				var victims [][]byte
				for ok := it.First(); ok; ok = it.Next() {
					ts := workload.ExtractDeleteKey(it.Value())
					if ts >= lo && ts < hi {
						victims = append(victims, append([]byte(nil), it.Key()...))
					}
				}
				if err := it.Close(); err != nil {
					log.Fatal(err)
				}
				for _, k := range victims {
					if err := db.Delete(k); err != nil {
						log.Fatal(err)
					}
				}
			}
			if err := db.WaitIdle(); err != nil {
				log.Fatal(err)
			}
			retentionBytes += rewritten() - before
			dropped = int(hi)
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	if err := db.WaitIdle(); err != nil {
		log.Fatal(err)
	}

	// Count what is left.
	it, err := db.NewIter(acheron.IterOptions{})
	if err != nil {
		log.Fatal(err)
	}
	live := 0
	for ok := it.First(); ok; ok = it.Next() {
		live++
	}
	if err := it.Close(); err != nil {
		log.Fatal(err)
	}

	st := db.Stats()
	fmt.Printf("\n--- %s ---\n", name)
	fmt.Printf("events ingested:             %d\n", events)
	fmt.Printf("live events after retention: %d\n", live)
	fmt.Printf("bytes rewritten (retention): %d\n", retentionBytes)
	fmt.Printf("KiWi pages dropped whole:    %d\n", st.PagesDropped.Get())
	fmt.Printf("entries dropped by ranges:   %d\n", st.RangeCoveredDropped.Get())
	fmt.Printf("total write amplification:   %.2f\n", st.WriteAmplification())
}

func main() {
	fmt.Println("sliding-window event retention: KiWi range deletes vs point deletes")
	run("KiWi layout + eager secondary range deletes", true)
	run("standard layout + scan-and-point-delete", false)
}
