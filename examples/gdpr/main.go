// GDPR example: the right to be forgotten with a hard persistence bound.
//
// A service stores user records. Regulation requires that once a user asks
// to be deleted, their data is physically gone within a fixed window. The
// example runs two engines side by side — a delete-oblivious baseline and
// Acheron's FADE with the compliance window as its DPT — processes the same
// erasure requests, and prints a compliance report from the engines' own
// persistence-latency histograms.
//
//	go run ./examples/gdpr
package main

import (
	"fmt"
	"log"

	acheron "repro"
	"repro/internal/workload"
)

// complianceWindow is the regulatory erasure deadline, in logical ticks
// (the example drives a logical clock: 1 tick = 1 operation; think of a
// tick as ~100ms of production traffic).
const complianceWindow = 20_000

func runEngine(name string, dpt acheron.Duration) {
	clk := &acheron.LogicalClock{}
	opts := acheron.Options{
		FS:                     acheron.NewMemFS(),
		Clock:                  clk,
		MemTableBytes:          128 << 10,
		DisableAutoMaintenance: true,
		Compaction: acheron.CompactionOptions{
			SizeRatio:       4,
			BaseLevelBytes:  512 << 10,
			TargetFileBytes: 128 << 10,
			DPT:             dpt,
		},
	}
	if dpt > 0 {
		opts.Compaction.Picker = acheron.PickFADE
	}
	db, err := acheron.Open("gdpr-db", opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	step := func() {
		clk.Advance(1)
		if clk.Now()%64 == 0 {
			if err := db.WaitIdle(); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Phase 1: the service accumulates user records.
	const users = 30_000
	for i := 0; i < users; i++ {
		key := []byte(fmt.Sprintf("user:%08d", i))
		profile := workload.ValueFor(uint64(clk.Now()), 128)
		if err := db.Put(key, profile); err != nil {
			log.Fatal(err)
		}
		step()
	}

	// Phase 2: normal traffic interleaved with erasure requests. Every
	// 20th operation is a right-to-be-forgotten request.
	erasures := 0
	for i := 0; i < 40_000; i++ {
		u := (i * 7919) % users
		key := []byte(fmt.Sprintf("user:%08d", u))
		if i%20 == 19 {
			if err := db.Delete(key); err != nil {
				log.Fatal(err)
			}
			erasures++
		} else {
			if err := db.Put(key, workload.ValueFor(uint64(clk.Now()), 128)); err != nil {
				log.Fatal(err)
			}
		}
		step()
	}

	// Phase 3: the compliance window elapses with background traffic
	// (maintenance keeps running, but no new writes). The demo drives
	// maintenance in discrete steps, so deadlines can be met up to one
	// step late; that step is the demo's scheduler slack.
	const settleStep = complianceWindow / 128
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 160; i++ {
		clk.Advance(settleStep)
		if err := db.WaitIdle(); err != nil {
			log.Fatal(err)
		}
	}

	st := db.Stats()
	persisted := st.PersistenceLatency.Count()
	live := st.LiveTombstones.Get()
	// A request counts as compliant only if it was physically erased
	// within the window; still-pending erasures are violations.
	within := float64(persisted) * st.PersistedWithin(complianceWindow+settleStep)
	total := float64(persisted + live)
	fmt.Printf("\n--- %s ---\n", name)
	fmt.Printf("erasure requests:            %d\n", erasures)
	fmt.Printf("physically erased:           %d\n", persisted)
	fmt.Printf("superseded (re-registered):  %d\n", st.TombstonesSuperseded.Get())
	fmt.Printf("still pending erasure:       %d\n", live)
	fmt.Printf("erase latency p50/p99/max:   %d / %d / %d ticks\n",
		st.PersistenceLatency.Quantile(0.50),
		st.PersistenceLatency.Quantile(0.99),
		st.PersistenceLatency.Max())
	if total > 0 {
		fmt.Printf("erased within window:        %.1f%%\n", 100*within/total)
	}
	if live > 0 || st.PersistenceLatency.Max() > complianceWindow+settleStep {
		fmt.Println("compliance: VIOLATED")
	} else {
		fmt.Println("compliance: OK (within scheduler slack)")
	}
}

func main() {
	fmt.Println("GDPR right-to-be-forgotten compliance demo")
	fmt.Printf("compliance window: %d ticks\n", complianceWindow)
	runEngine("baseline LSM (no persistence bound)", 0)
	runEngine("acheron FADE (DPT = window)", complianceWindow)
}
