// Package condloop guards against the two classic sync.Cond mistakes that
// produced this engine's historical lost-wakeup bugs (write-stall and
// scheduler-drain hangs):
//
//   - Wait called outside a loop, or in a loop that never re-checks its
//     predicate. Cond.Wait can return spuriously and, worse, the condition
//     can be re-falsified between Broadcast and the waiter re-acquiring the
//     mutex — `if !ready { c.Wait() }` is a latent hang. Wait must sit in
//     `for !ready { c.Wait() }`, or in a `for {}` whose body breaks or
//     returns on the predicate.
//
//   - Signal/Broadcast without the cond's mutex held. Legal per package
//     sync, but racy in this codebase's idiom: a waiter can check its
//     predicate, lose the CPU, miss the unlocked Broadcast, then Wait
//     forever. The analyzer learns each cond's mutex from its
//     `sync.NewCond(&mu)` construction (exported as "condmutex" facts for
//     cross-package use) and requires that mutex at every wake site.
//
// Wait's own mutex requirement is not checked: the runtime already panics
// on it, and helper functions that Wait on a caller-held mutex (the
// *Locked idiom) would be unverifiable false positives.
package condloop

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/tools/acheronlint/analyzers/internal/lockflow"
	"repro/tools/acheronlint/lintframe"
)

// Analyzer is the condloop analyzer.
var Analyzer = &lintframe.Analyzer{
	Name: "condloop",
	Doc:  "flags sync.Cond.Wait outside a predicate loop and Signal/Broadcast without the cond's mutex held",
	Run:  run,
}

func run(pass *lintframe.Pass) error {
	bindings := collectBindings(pass)

	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkWaitLoops(pass, fd.Body)
			checkWakeSites(pass, fd.Body, bindings)
		}
	}

	imported := make(map[string]bool)
	for _, f := range pass.ImportedFacts("condmutex") {
		imported[f.Object] = true
	}
	var keys []string
	for cond := range bindings {
		if !imported[cond] {
			keys = append(keys, cond)
		}
	}
	sort.Strings(keys)
	for _, cond := range keys {
		pass.ExportFact(cond, "condmutex", bindings[cond])
	}
	return nil
}

// collectBindings maps each cond's canonical name to its mutex's canonical
// name, from sync.NewCond(&mu) construction sites anywhere in the package
// plus imported facts.
func collectBindings(pass *lintframe.Pass) map[string]string {
	bindings := make(map[string]string)
	for _, f := range pass.ImportedFacts("condmutex") {
		bindings[f.Object] = f.Data
	}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		mu, ok := newCondMutex(pass.TypesInfo, rhs)
		if !ok {
			return
		}
		if cond := lockflow.Key(pass.TypesInfo, lhs); cond != "" {
			bindings[cond] = mu
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						bind(n.Lhs[i], rhs)
					}
				}
			case *ast.ValueSpec: // var cond = sync.NewCond(&mu)
				if len(n.Names) == len(n.Values) {
					for i, rhs := range n.Values {
						bind(n.Names[i], rhs)
					}
				}
			}
			return true
		})
	}
	return bindings
}

// newCondMutex recognizes sync.NewCond(&mu) and returns mu's canonical name.
func newCondMutex(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", false
	}
	fn := lockflow.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" || fn.Name() != "NewCond" {
		return "", false
	}
	arg := ast.Unparen(call.Args[0])
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
		arg = ast.Unparen(u.X)
	}
	return lockflow.Key(info, arg), true
}

// condMethod returns the canonical cond name if call is a
// (*sync.Cond).<method> invocation.
func condMethod(info *types.Info, call *ast.CallExpr, method string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != method || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	named := recv.Type()
	if p, ok := named.(*types.Pointer); ok {
		named = p.Elem()
	}
	if n, ok := named.(*types.Named); !ok || n.Obj().Name() != "Cond" {
		return "", false
	}
	return lockflow.Key(info, sel.X), true
}

// checkWaitLoops walks a function body tracking the enclosing-loop stack and
// flags Wait calls with no loop, or a loop whose predicate is never
// re-checked.
func checkWaitLoops(pass *lintframe.Pass, body *ast.BlockStmt) {
	var loops []ast.Stmt // enclosing For/Range statements, innermost last
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal is its own function: Wait inside it is not covered
			// by an outer loop.
			saved := loops
			loops = nil
			ast.Inspect(n.Body, walk)
			loops = saved
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			if f, ok := n.(*ast.ForStmt); ok {
				if f.Init != nil {
					ast.Inspect(f.Init, walk)
				}
				if f.Post != nil {
					ast.Inspect(f.Post, walk)
				}
				ast.Inspect(f.Body, walk)
			} else {
				ast.Inspect(n.(*ast.RangeStmt).Body, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.CallExpr:
			cond, ok := condMethod(pass.TypesInfo, n, "Wait")
			if !ok {
				return true
			}
			if len(loops) == 0 {
				pass.Reportf(n.Pos(),
					"%s.Wait outside a loop: the predicate is checked at most once, and a wakeup between check and Wait is lost", cond)
				return true
			}
			if !loopRechecksPredicate(loops[len(loops)-1]) {
				pass.Reportf(n.Pos(),
					"%s.Wait in a loop that never re-checks its predicate: add a loop condition or a conditional break/return", cond)
			}
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// loopRechecksPredicate reports whether the loop enclosing a Wait gives the
// waiter a predicate to re-evaluate each iteration: either a loop condition
// (`for !ready { ... }`) or a conditional exit in the body
// (`for { if ready { break } ... }`).
func loopRechecksPredicate(loop ast.Stmt) bool {
	f, ok := loop.(*ast.ForStmt)
	if ok && f.Cond != nil {
		return true
	}
	var body *ast.BlockStmt
	if ok {
		body = f.Body
	} else {
		body = loop.(*ast.RangeStmt).Body
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			return false // exits in nested scopes don't leave this loop
		case *ast.IfStmt:
			if bodyExits(n.Body) || (n.Else != nil && elseExits(n.Else)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func bodyExits(b *ast.BlockStmt) bool {
	for _, s := range b.List {
		switch s := s.(type) {
		case *ast.ReturnStmt:
			return true
		case *ast.BranchStmt:
			if s.Tok == token.BREAK || s.Tok == token.GOTO {
				return true
			}
		}
	}
	return false
}

func elseExits(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return bodyExits(s)
	case *ast.IfStmt:
		return bodyExits(s.Body) || (s.Else != nil && elseExits(s.Else))
	}
	return false
}

// checkWakeSites runs the held-lock walker over a body and flags
// Signal/Broadcast calls on conds whose bound mutex is not held.
func checkWakeSites(pass *lintframe.Pass, body *ast.BlockStmt, bindings map[string]string) {
	w := &lockflow.Walker{
		Info: pass.TypesInfo,
		OnCall: func(call *ast.CallExpr, held lockflow.Held) {
			for _, method := range [...]string{"Signal", "Broadcast"} {
				cond, ok := condMethod(pass.TypesInfo, call, method)
				if !ok {
					continue
				}
				mu, bound := bindings[cond]
				if !bound {
					// Unknown binding (cond constructed elsewhere without a
					// fact): can't judge, stay silent.
					return
				}
				if _, ok := held[mu]; !ok {
					pass.Reportf(call.Pos(),
						"%s.%s without holding %q: a waiter can re-check its predicate and miss this wakeup", cond, method, mu)
				}
				return
			}
		},
	}
	w.WalkFunc(body)
}
