// Package condloop fixtures: the write-stall wait/wake idiom done right,
// the lost-wakeup shapes done wrong.
package condloop

import "sync"

type Q struct {
	mu    sync.Mutex
	cond  *sync.Cond
	ready bool
	n     int
}

func newQ() *Q {
	q := &Q{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// waitGood is the canonical predicate loop.
func (q *Q) waitGood() {
	q.mu.Lock()
	for !q.ready {
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// waitLost checks the predicate once: a wakeup between the check and a
// re-falsified predicate hangs forever.
func (q *Q) waitLost() {
	q.mu.Lock()
	if !q.ready {
		q.cond.Wait() // want `condloop.Q.cond.Wait outside a loop`
	}
	q.mu.Unlock()
}

// waitSpin loops but never re-checks anything.
func (q *Q) waitSpin() {
	q.mu.Lock()
	for {
		q.cond.Wait() // want `Wait in a loop that never re-checks its predicate`
	}
}

// waitBreak re-checks via a conditional break: fine.
func (q *Q) waitBreak() {
	q.mu.Lock()
	for {
		if q.ready {
			break
		}
		q.cond.Wait()
	}
	q.mu.Unlock()
}

// waitReturn re-checks via a conditional return: fine.
func (q *Q) waitReturn() (n int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.n > 0 {
			return q.n
		}
		q.cond.Wait()
	}
}

// waitInClosure: the goroutine body is its own function; an outer loop
// does not cover its Wait.
func (q *Q) waitInClosure() {
	for i := 0; i < 3; i++ {
		go func() {
			q.mu.Lock()
			q.cond.Wait() // want `condloop.Q.cond.Wait outside a loop`
			q.mu.Unlock()
		}()
	}
}

// wakeGood publishes the predicate and broadcasts under the cond's mutex.
func (q *Q) wakeGood() {
	q.mu.Lock()
	q.ready = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// wakeUnlocked broadcasts after dropping the mutex: a waiter can re-check
// its predicate between the store and the broadcast and sleep through it.
func (q *Q) wakeUnlocked() {
	q.mu.Lock()
	q.ready = true
	q.mu.Unlock()
	q.cond.Broadcast() // want `condloop.Q.cond.Broadcast without holding "condloop.Q.mu"`
}

// signalBare never takes the mutex at all.
func (q *Q) signalBare() {
	q.cond.Signal() // want `condloop.Q.cond.Signal without holding "condloop.Q.mu"`
}

// Package-level cond bound in a var declaration rather than an assignment.
var (
	gateMu   sync.Mutex
	gateOpen bool
	gateCond = sync.NewCond(&gateMu)
)

func gateWait() {
	gateMu.Lock()
	for !gateOpen {
		gateCond.Wait()
	}
	gateMu.Unlock()
}

func gateWakeBad() {
	gateOpen = true
	gateCond.Broadcast() // want `condloop.gateCond.Broadcast without holding "condloop.gateMu"`
}

// Reg models acherond's connection registry: Close force-closes every
// connection, then drains the map with a predicate loop; handlers
// unregister themselves and broadcast under the cond's mutex.
type Reg struct {
	mu    sync.Mutex
	cond  *sync.Cond
	conns map[int]struct{}
}

func newReg() *Reg {
	r := &Reg{conns: map[int]struct{}{}}
	r.cond = sync.NewCond(&r.mu)
	return r
}

// closeGood is the server-shutdown drain done right: re-check the live
// connection count around every Wait.
func (r *Reg) closeGood() {
	r.mu.Lock()
	for len(r.conns) > 0 {
		r.cond.Wait()
	}
	r.mu.Unlock()
}

// closeOnce waits exactly once: with two live connections the first
// unregister wakes Close while the map is still non-empty, and shutdown
// returns with a handler goroutine still running.
func (r *Reg) closeOnce() {
	r.mu.Lock()
	if len(r.conns) > 0 {
		r.cond.Wait() // want `condloop.Reg.cond.Wait outside a loop`
	}
	r.mu.Unlock()
}

// unregisterGood deletes and broadcasts under the mutex, so the drain
// loop cannot re-check between the delete and the wakeup.
func (r *Reg) unregisterGood(id int) {
	r.mu.Lock()
	delete(r.conns, id)
	r.cond.Broadcast()
	r.mu.Unlock()
}

// unregisterUnlocked broadcasts after unlocking: Close can check the map,
// see it non-empty, and sleep through the only wakeup for the last conn.
func (r *Reg) unregisterUnlocked(id int) {
	r.mu.Lock()
	delete(r.conns, id)
	r.mu.Unlock()
	r.cond.Broadcast() // want `condloop.Reg.cond.Broadcast without holding "condloop.Reg.mu"`
}
