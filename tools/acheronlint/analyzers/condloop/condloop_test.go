package condloop_test

import (
	"testing"

	"repro/tools/acheronlint/analyzers/condloop"
	"repro/tools/acheronlint/lintframe/analysistest"
)

func TestCondLoop(t *testing.T) {
	analysistest.Run(t, "testdata", condloop.Analyzer, "condloop")
}
