// Package atomicmix enforces the repo's atomic-field discipline.
//
// A field is atomic-disciplined when it is either declared with one of the
// sync/atomic wrapper types (atomic.Uint64, atomic.Bool, ...) or passed by
// address to a sync/atomic package function (atomic.AddUint64(&s.n, 1)).
// The wrapper types already make plain access impossible, so the analyzer's
// work splits two ways:
//
//   - address-taken discipline fields (the legacy style) must never be read
//     or written outside a sync/atomic call — a plain `s.n++` next to an
//     atomic.AddUint64 elsewhere is a data race the race detector only
//     catches if the schedule cooperates;
//   - values whose type transitively contains an atomic wrapper must not be
//     copied (assignment, by-value call/return/range/receiver/param):
//     a copied atomic.Uint64 silently forks the counter, and the published
//     sequence-number ratchet (commitPipeline.visible) would split-brain.
//
// Discipline fields discovered in one package are exported as
// "atomicfield" facts, so a dependent package dereferencing an exported
// field plainly is flagged too.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/acheronlint/analyzers/internal/lockflow"
	"repro/tools/acheronlint/lintframe"
)

// Analyzer is the atomicmix analyzer.
var Analyzer = &lintframe.Analyzer{
	Name: "atomicmix",
	Doc:  "flags plain access to atomically-accessed fields and copies of values containing sync/atomic types",
	Run:  run,
}

// atomicWrappers are the sync/atomic types whose values must not be copied.
var atomicWrappers = map[string]bool{
	"Bool": true, "Int32": true, "Int64": true,
	"Uint32": true, "Uint64": true, "Uintptr": true,
	"Pointer": true, "Value": true,
}

func run(pass *lintframe.Pass) error {
	c := &checker{
		pass:       pass,
		discipline: make(map[string]bool),
		sanctioned: make(map[token.Pos]bool),
		hasAtomic:  make(map[types.Type]int),
	}
	for _, f := range pass.ImportedFacts("atomicfield") {
		c.discipline[f.Object] = true
	}

	// Pass 1: find the discipline fields — operands of &x.f arguments to
	// sync/atomic functions — and remember those sanctioned positions.
	for _, file := range pass.Files {
		ast.Inspect(file, c.collectAtomicCalls)
	}

	// Pass 2: report plain accesses and copies.
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, c.check)
	}

	var fields []string
	for f := range c.discipline {
		if !c.imported(f) {
			fields = append(fields, f)
		}
	}
	sort.Strings(fields)
	for _, f := range fields {
		pass.ExportFact(f, "atomicfield", "")
	}
	return nil
}

type checker struct {
	pass       *lintframe.Pass
	discipline map[string]bool // canonical field keys accessed via sync/atomic
	sanctioned map[token.Pos]bool
	hasAtomic  map[types.Type]int // memo: 0 unknown/visiting, 1 no, 2 yes
}

func (c *checker) imported(key string) bool {
	for _, f := range c.pass.ImportedFacts("atomicfield") {
		if f.Object == key {
			return true
		}
	}
	return false
}

// collectAtomicCalls marks fields passed by address to sync/atomic
// functions as discipline fields, and their use positions as sanctioned.
func (c *checker) collectAtomicCalls(n ast.Node) bool {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return true
	}
	fn := lockflow.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return true
	}
	for _, arg := range call.Args {
		u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		operand := ast.Unparen(u.X)
		if _, ok := operand.(*ast.SelectorExpr); !ok {
			if _, ok := operand.(*ast.Ident); !ok {
				continue
			}
		}
		key := lockflow.Key(c.pass.TypesInfo, operand)
		if key == "" || !strings.Contains(key, ".") {
			continue // locals stay function-scoped; nothing to enforce
		}
		c.discipline[key] = true
		c.sanctioned[operand.Pos()] = true
	}
	return true
}

// check reports plain uses of discipline fields and by-value copies of
// atomic-bearing types.
func (c *checker) check(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.SelectorExpr:
		c.checkPlainAccess(n)
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
				continue
			}
			c.checkCopy(rhs, "assignment copies")
		}
	case *ast.ValueSpec:
		for _, v := range n.Values {
			c.checkCopy(v, "variable initialization copies")
		}
	case *ast.CallExpr:
		if fn := lockflow.Callee(c.pass.TypesInfo, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
			return true
		}
		if isConversion(c.pass.TypesInfo, n) {
			return true
		}
		for _, arg := range n.Args {
			c.checkCopy(arg, "call passes")
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.checkCopy(r, "return copies")
		}
	case *ast.RangeStmt:
		if n.Value != nil && !isBlank(n.Value) {
			if t := c.pass.TypesInfo.TypeOf(n.Value); t != nil && c.containsAtomic(t) {
				c.pass.Reportf(n.Value.Pos(),
					"range copies %s by value; it contains sync/atomic fields and must not be copied", types.TypeString(t, typeQualifier))
			}
		}
	case *ast.FuncDecl:
		c.checkSignature(n.Recv, n.Type)
	case *ast.FuncLit:
		c.checkSignature(nil, n.Type)
	}
	return true
}

// checkPlainAccess flags a selector that resolves to a discipline field
// outside a sanctioned sync/atomic call site.
func (c *checker) checkPlainAccess(sel *ast.SelectorExpr) {
	if c.sanctioned[sel.Pos()] {
		return
	}
	s, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	key := lockflow.Key(c.pass.TypesInfo, sel)
	if key == "" || !c.discipline[key] {
		return
	}
	c.pass.Reportf(sel.Pos(),
		"plain access to %q, which is accessed with sync/atomic elsewhere; use atomic operations consistently", key)
}

// checkCopy flags expr when evaluating it copies an atomic-bearing value.
// Only moves of an existing value count (identifiers, field selections,
// indexing, dereference); composite literals construct in place.
func (c *checker) checkCopy(expr ast.Expr, what string) {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := c.pass.TypesInfo.TypeOf(expr)
	if t == nil || !c.containsAtomic(t) {
		return
	}
	c.pass.Reportf(expr.Pos(),
		"%s %s by value; it contains sync/atomic fields and must not be copied", what, types.TypeString(t, typeQualifier))
}

// checkSignature flags by-value receivers and parameters of atomic-bearing
// types: every call would copy the atomics. Result types are not flagged —
// the return-site check catches actual copies, while a factory returning a
// freshly-constructed value is legitimate.
func (c *checker) checkSignature(recv *ast.FieldList, ft *ast.FuncType) {
	flag := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := c.pass.TypesInfo.TypeOf(field.Type)
			if t == nil || !c.containsAtomic(t) {
				continue
			}
			c.pass.Reportf(field.Type.Pos(),
				"%s of type %s is passed by value; it contains sync/atomic fields and must not be copied", what, types.TypeString(t, typeQualifier))
		}
	}
	flag(recv, "receiver")
	flag(ft.Params, "parameter")
}

// containsAtomic reports whether t transitively contains a sync/atomic
// wrapper type or an address-taken discipline field, by value.
func (c *checker) containsAtomic(t types.Type) bool {
	switch c.hasAtomic[t] {
	case 1:
		return false
	case 2:
		return true
	}
	c.hasAtomic[t] = 1 // break cycles: assume no until proven otherwise
	result := false
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" && atomicWrappers[obj.Name()] {
			result = true
			break
		}
		result = c.containsAtomic(u.Underlying()) || c.hasDisciplineField(u)
	case *types.Alias:
		result = c.containsAtomic(types.Unalias(t))
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.containsAtomic(u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = c.containsAtomic(u.Elem())
	}
	if result {
		c.hasAtomic[t] = 2
	}
	return result
}

// hasDisciplineField reports whether the named struct type owns a field
// that is atomically accessed (by this package or, via facts, another).
func (c *checker) hasDisciplineField(n *types.Named) bool {
	s, ok := n.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	prefix := lockflow.PkgShort(obj.Pkg()) + "." + obj.Name() + "."
	for i := 0; i < s.NumFields(); i++ {
		if c.discipline[prefix+s.Field(i).Name()] {
			return true
		}
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// isConversion reports whether call is a type conversion, not a function
// call; conversions of atomic-bearing types don't occur, but the guard
// keeps TypeOf(fun)==type cases from being treated as by-value args.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isType := info.Uses[id].(*types.TypeName); isType {
			return true
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isType := info.Uses[sel.Sel].(*types.TypeName); isType {
			return true
		}
	}
	return false
}

// typeQualifier shortens type names to pkg.Type in diagnostics.
func typeQualifier(p *types.Package) string { return p.Name() }
