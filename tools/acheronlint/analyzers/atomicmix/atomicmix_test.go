package atomicmix_test

import (
	"testing"

	"repro/tools/acheronlint/analyzers/atomicmix"
	"repro/tools/acheronlint/lintframe/analysistest"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "atomicmix")
}
