// Package atomicmix fixtures: address-taken atomic fields read plainly,
// and by-value copies of atomic-bearing structs in every position the
// analyzer checks.
package atomicmix

import "sync/atomic"

// Counters mixes an address-taken atomic field (n) with a wrapper-typed
// one (hits).
type Counters struct {
	n    uint64
	hits atomic.Uint64
}

func (c *Counters) incr() {
	atomic.AddUint64(&c.n, 1)
	c.hits.Add(1)
}

func (c *Counters) loadGood() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *Counters) mixedBad() uint64 {
	c.n++      // want `plain access to "atomicmix.Counters.n"`
	return c.n // want `plain access to "atomicmix.Counters.n"`
}

func (c *Counters) storeBad() {
	c.n = 0 // want `plain access to "atomicmix.Counters.n"`
}

// Stats contains an atomic wrapper, so its values must never be copied.
type Stats struct {
	puts atomic.Int64
}

func snapshot(s *Stats) Stats {
	return *s // want `return copies atomicmix.Stats by value`
}

func dupAssign(s *Stats) {
	dup := *s // want `assignment copies atomicmix.Stats by value`
	dup.puts.Add(1)
}

func consume(s Stats) int64 { // want `parameter of type atomicmix.Stats is passed by value`
	return s.puts.Load()
}

func passByValue(s *Stats) int64 {
	return consume(*s) // want `call passes atomicmix.Stats by value`
}

func (s Stats) valueReceiver() int64 { // want `receiver of type atomicmix.Stats is passed by value`
	return s.puts.Load()
}

func sum(list []Stats) int64 {
	var total int64
	for _, s := range list { // want `range copies atomicmix.Stats by value`
		total += s.puts.Load()
	}
	return total
}

// Pointers, not copies: all fine.
func viaPointer(list []Stats) int64 {
	var total int64
	for i := range list {
		total += list[i].puts.Load()
	}
	return total
}

// Plain carries no wrapper type, only an address-taken discipline field —
// copying it still forks the atomic.
type Plain struct {
	seq uint64
}

func bump(p *Plain) {
	atomic.AddUint64(&p.seq, 1)
}

func forkPlain(p *Plain) Plain {
	return *p // want `return copies atomicmix.Plain by value`
}

// Inert has no atomics at all; copy freely.
type Inert struct {
	a, b int
}

func copyInert(i *Inert) Inert {
	return *i
}
