package rawkeycompare

import "bytes"

// seekInRun is the violation shape: raw byte comparison applied to keys
// that must be ordered by the engine comparator.
func seekInRun(keys [][]byte, target []byte) int {
	for i, k := range keys {
		if bytes.Equal(k, target) { // want `bytes.Equal bypasses the engine key comparator`
			return i
		}
		if bytes.Compare(k, target) > 0 { // want `bytes.Compare bypasses the engine key comparator`
			return -1
		}
	}
	return -1
}

// cmpValue flags even a bare function-value reference: handing
// bytes.Compare to an iterator as its comparator is the same bug.
var cmpValue = bytes.Compare // want `bytes.Compare bypasses the engine key comparator`

// magicOK compares file magic bytes, not keys; the annotation records that.
func magicOK(header []byte) bool {
	//lint:ignore rawkeycompare file magic, not a key comparison
	return bytes.Equal(header, []byte("ACHERON1"))
}

// trailingOK shows the same-line annotation form.
func trailingOK(a, b []byte) bool {
	return bytes.Equal(a, b) //lint:ignore rawkeycompare checksum bytes, not keys
}

// prefixOK uses a non-comparison bytes helper, which is fine.
func prefixOK(k []byte) bool {
	return bytes.HasPrefix(k, []byte("user/"))
}
