// Package rawkeycompare flags uses of bytes.Compare and bytes.Equal.
//
// Acheron's invariants (tombstones persisting within the DPT, FADE never
// dropping a live tombstone) all assume one total order over internal keys:
// user key ascending, then trailer (seqnum, kind) descending, as implemented
// by the base package's comparator functions. A raw bytes.Compare applied to
// an encoded internal key, or to a user key in a context that should consult
// the engine comparator, silently diverges from that order. Because in a
// storage engine almost every byte-slice comparison is a key comparison, the
// analyzer is strict: every reference to bytes.Compare/bytes.Equal in
// non-test code is flagged, and the rare genuinely non-key comparison is
// annotated with //lint:ignore rawkeycompare <reason>.
package rawkeycompare

import (
	"go/ast"
	"go/types"

	"repro/tools/acheronlint/lintframe"
)

// Analyzer is the rawkeycompare analyzer.
var Analyzer = &lintframe.Analyzer{
	Name: "rawkeycompare",
	Doc:  "flags bytes.Compare/bytes.Equal where the base comparator functions must be used",
	Run:  run,
}

func run(pass *lintframe.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "bytes" {
				return true
			}
			if name := fn.Name(); name == "Compare" || name == "Equal" {
				pass.Reportf(sel.Pos(),
					"bytes.%s bypasses the engine key comparator; use base.Compare, base.CompareEncoded, or InternalKey.Compare, or annotate with //lint:ignore rawkeycompare <reason> if the operands are not keys", name)
			}
			return true
		})
	}
	return nil
}
