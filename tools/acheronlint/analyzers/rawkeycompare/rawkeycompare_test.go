package rawkeycompare_test

import (
	"testing"

	"repro/tools/acheronlint/analyzers/rawkeycompare"
	"repro/tools/acheronlint/lintframe/analysistest"
)

func TestRawKeyCompare(t *testing.T) {
	analysistest.Run(t, "testdata", rawkeycompare.Analyzer, "rawkeycompare")
}
