package closecheck_test

import (
	"testing"

	"repro/tools/acheronlint/analyzers/closecheck"
	"repro/tools/acheronlint/lintframe/analysistest"
)

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, "testdata", closecheck.Analyzer, "closecheck")
}
