// Package closecheck flags discarded error returns from Close, Sync, and
// Flush on the engine's durability-relevant types: vfs files and
// filesystems, WAL writers, sstable writers/readers, and manifest version
// sets.
//
// A dropped Close/Sync error on a write path is an acknowledged-but-lost
// write waiting to happen: the WAL or sstable claims durability the disk
// never confirmed. The analyzer flags three discard shapes —
//
//	w.Close()         // bare statement
//	_ = w.Close()     // explicit blank assignment
//	defer w.Close()   // deferred, error unobservable
//
// — when the method is Close/Sync/Flush returning exactly one error and the
// receiver's type is declared in one of the tracked packages. Best-effort
// cleanup (closing a read-only file, releasing resources on a path that is
// already returning an error) routes through vfs.BestEffortClose, which
// names the intent and is not flagged; fs.Remove cleanup is likewise outside
// the tracked method set by design. Anything else gets a
// //lint:ignore closecheck <reason> annotation.
package closecheck

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/tools/acheronlint/lintframe"
)

// Analyzer is the closecheck analyzer.
var Analyzer = &lintframe.Analyzer{
	Name: "closecheck",
	Doc:  "flags discarded Close/Sync/Flush errors on WAL, sstable, manifest, and vfs writers",
	Run:  run,
}

// trackedPkgSuffixes are the import-path suffixes of packages whose
// Close/Sync/Flush errors are durability-relevant.
var trackedPkgSuffixes = []string{
	"internal/vfs",
	"internal/vfs/errorfs",
	"internal/wal",
	"internal/sstable",
	"internal/manifest",
}

func run(pass *lintframe.Pass) error {
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if name, recv := trackedCloseCall(pass, s.X); name != "" {
					pass.Reportf(s.Pos(),
						"error from %s.%s is silently discarded; propagate it, or use vfs.BestEffortClose / //lint:ignore closecheck <reason> for best-effort cleanup", recv, name)
				}
			case *ast.DeferStmt:
				if name, recv := trackedCloseCall(pass, s.Call); name != "" {
					pass.Reportf(s.Pos(),
						"deferred %s.%s discards its error; capture it in a named return or close explicitly on the success path", recv, name)
				}
			case *ast.AssignStmt:
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return true
				}
				if id, ok := s.Lhs[0].(*ast.Ident); !ok || id.Name != "_" {
					return true
				}
				if name, recv := trackedCloseCall(pass, s.Rhs[0]); name != "" {
					pass.Reportf(s.Pos(),
						"error from %s.%s is blank-assigned on a durability path; propagate it, or use vfs.BestEffortClose for best-effort cleanup", recv, name)
				}
			}
			return true
		})
	}
	return nil
}

// trackedCloseCall reports whether e is a call to Close/Sync/Flush returning
// exactly one error on a receiver type declared in a tracked package. It
// returns the method name and a printable receiver expression, or "", "".
func trackedCloseCall(pass *lintframe.Pass, e ast.Expr) (method, recv string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	switch fn.Name() {
	case "Close", "Sync", "Flush":
	default:
		return "", ""
	}
	// Attribute the call to the receiver's declared type as well as the
	// method's declaring package: vfs.File.Close is promoted from
	// io.Closer, and it is precisely the promoted methods a storage
	// engine's durability types rely on.
	tracked := false
	for _, path := range lintframe.CalleePkgPaths(pass.TypesInfo, sel) {
		if trackedPkg(path) {
			tracked = true
			break
		}
	}
	if !tracked {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return "", ""
	}
	if !types.Identical(sig.Results().At(0).Type(), types.Universe.Lookup("error").Type()) {
		return "", ""
	}
	return fn.Name(), types.ExprString(sel.X)
}

func trackedPkg(path string) bool {
	for _, suf := range trackedPkgSuffixes {
		if strings.HasSuffix(path, suf) {
			return true
		}
	}
	return false
}
