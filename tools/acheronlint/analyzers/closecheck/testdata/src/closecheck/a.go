package closecheck

import (
	"os"

	"repro/internal/vfs"
	"repro/internal/wal"
)

// bareDiscards drops durability errors on the floor in every shape the
// analyzer recognizes.
func bareDiscards(f vfs.File, w *wal.Writer) {
	f.Sync()          // want `error from f.Sync is silently discarded`
	f.Close()         // want `error from f.Close is silently discarded`
	_ = w.Sync()      // want `error from w.Sync is blank-assigned on a durability path`
	w.AddRecord(nil)  // not Close/Sync/Flush: out of scope for this analyzer
}

// deferredDiscard loses the WAL close error that decides whether the last
// batch was durable.
func deferredDiscard(w *wal.Writer) error {
	defer w.Close() // want `deferred w.Close discards its error`
	return w.AddRecord([]byte("rec"))
}

// propagated is the fixed shape for a durability path.
func propagated(w *wal.Writer) error {
	if err := w.Sync(); err != nil {
		return err
	}
	return w.Close()
}

// checkedDefer captures the deferred close error in a named return.
func checkedDefer(w *wal.Writer) (err error) {
	defer func() {
		if cerr := w.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	return w.AddRecord([]byte("rec"))
}

// bestEffort routes reader-side cleanup through the named helper, which the
// analyzer deliberately does not track.
func bestEffort(fs vfs.FS) ([]byte, error) {
	in, err := fs.Open("CURRENT")
	if err != nil {
		return nil, err
	}
	defer vfs.BestEffortClose(in)
	size, err := in.Size()
	if err != nil {
		return nil, err
	}
	buf := make([]byte, size)
	_, err = in.ReadAt(buf, 0)
	return buf, err
}

// untracked types (os.File is not an engine durability type here) and
// Remove cleanup are out of scope.
func untracked(fs vfs.FS) {
	f, _ := os.Create("tmp")
	defer f.Close()
	_ = fs.Remove("leftover")
}

// annotated acknowledges a discard the helper cannot express.
func annotated(f vfs.File) {
	//lint:ignore closecheck fault-injection shim, error checked by caller
	f.Close()
}
