// Package seqnumlit flags integer literals used where a base.SeqNum,
// base.Kind, or base.Trailer is expected.
//
// Entry kinds have named constants (base.KindSet, base.KindDelete, ...) and
// trailer packing belongs exclusively to the base package; a bare literal in
// either position is at best opaque and at worst a mis-encoded kind that
// makes FADE treat a tombstone as a live entry (or vice versa). Two zero
// values are exempt: Kind 0 is deliberately invalid (KindSet starts at 1),
// so `return 0, ...` on error paths is idiomatic; SeqNum literals 0 (the
// zero value / "before everything") and 1 (the idiomatic seq+1 increment)
// are likewise allowed. Everything else must name its meaning, e.g.
// base.MaxSeqNum for seek targets.
//
// The base package itself is exempt: it defines the representation and
// legitimately manipulates raw trailer bits.
package seqnumlit

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/acheronlint/lintframe"
)

// Analyzer is the seqnumlit analyzer.
var Analyzer = &lintframe.Analyzer{
	Name: "seqnumlit",
	Doc:  "flags integer literals used where a base.SeqNum/Kind/Trailer constant is expected",
	Run:  run,
}

// basePkgSuffix identifies the engine's base package by import-path suffix
// so the analyzer works both on this module ("repro/internal/base") and on
// testdata packages importing it.
const basePkgSuffix = "internal/base"

func run(pass *lintframe.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), basePkgSuffix) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.INT {
				return true
			}
			tv, ok := pass.TypesInfo.Types[lit]
			if !ok {
				return true
			}
			named, ok := tv.Type.(*types.Named)
			if !ok {
				return true
			}
			obj := named.Obj()
			if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), basePkgSuffix) {
				return true
			}
			switch obj.Name() {
			case "SeqNum":
				if tv.Value != nil {
					if v, ok := constant.Uint64Val(tv.Value); ok && v <= 1 {
						return true // 0 = zero value, 1 = seq+1 increment
					}
				}
				pass.Reportf(lit.Pos(),
					"integer literal %s used as base.SeqNum; use a named constant (e.g. base.MaxSeqNum) or derive it from an existing sequence number", lit.Value)
			case "Kind":
				if tv.Value != nil {
					if v, ok := constant.Uint64Val(tv.Value); ok && v == 0 {
						return true // 0 = invalid/zero kind, the idiomatic error return
					}
				}
				pass.Reportf(lit.Pos(),
					"integer literal %s used as base.Kind; use a named kind constant (base.KindSet, base.KindDelete, base.KindRangeDelete)", lit.Value)
			case "Trailer":
				pass.Reportf(lit.Pos(),
					"integer literal %s used as base.Trailer; build trailers with base.MakeTrailer", lit.Value)
			}
			return true
		})
	}
	return nil
}
