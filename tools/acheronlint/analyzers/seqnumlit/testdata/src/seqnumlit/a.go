package seqnumlit

import "repro/internal/base"

// literalKinds is the violation shape: magic numbers where named constants
// exist.
func literalKinds() base.InternalKey {
	k := base.MakeInternalKey([]byte("user"), 7, 2) // want `integer literal 7 used as base.SeqNum` `integer literal 2 used as base.Kind`
	return k
}

// literalConversions are no better for being explicit.
func literalConversions() {
	var kind base.Kind = 3   // want `integer literal 3 used as base.Kind`
	seq := base.SeqNum(9000) // want `integer literal 9000 used as base.SeqNum`
	tr := base.Trailer(258)  // want `integer literal 258 used as base.Trailer`
	_, _, _ = kind, seq, tr
}

// namedConstants is the fixed shape.
func namedConstants(seq base.SeqNum) base.InternalKey {
	search := base.MakeSearchKey([]byte("user"), base.MaxSeqNum)
	_ = search
	return base.MakeInternalKey([]byte("user"), seq, base.KindDelete)
}

// zeroAndIncrement are idiomatic and exempt: the zero sequence number and
// the seq+1 bump.
func zeroAndIncrement(seq base.SeqNum) base.SeqNum {
	if seq == 0 {
		return seq + 1
	}
	return base.MakeInternalKey(nil, 0, base.KindSet).SeqNum()
}

// zeroKindReturn is the idiomatic invalid-kind error return; Kind 0 is
// deliberately not a valid kind, so the zero value is exempt.
func zeroKindReturn(err error) (base.Kind, error) {
	if err != nil {
		return 0, err
	}
	return base.KindSet, nil
}

// annotated records a justified literal.
func annotated() base.SeqNum {
	//lint:ignore seqnumlit fixture mirrors the paper's Figure 3 seqnum
	return base.SeqNum(42)
}
