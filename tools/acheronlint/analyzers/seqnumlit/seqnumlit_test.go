package seqnumlit_test

import (
	"testing"

	"repro/tools/acheronlint/analyzers/seqnumlit"
	"repro/tools/acheronlint/lintframe/analysistest"
)

func TestSeqNumLit(t *testing.T) {
	analysistest.Run(t, "testdata", seqnumlit.Analyzer, "seqnumlit")
}
