// Package lockflow is the shared machinery of the concurrency-invariant
// analyzers (lockorder, condloop): canonical lock naming and a branch-aware
// walk that threads a held-lock set through a function body.
//
// Canonical names make a lock's identity stable across access paths: the
// engine mutex is "core.DB.mu" whether the source says d.mu, db.mu, or
// p.d.mu, which is what lets a package-wide acquire graph (and cross-package
// facts) line up. A struct field canonicalizes to
// "<pkg>.<Type>.<field>", a package-level var to "<pkg>.<var>", and anything
// else (locals, complex expressions) falls back to its source rendering.
package lockflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Held maps canonical lock names to the position where each was acquired.
type Held map[string]token.Pos

// Clone copies a held set.
func (h Held) Clone() Held {
	out := make(Held, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// union merges two held sets, preferring a's positions.
func union(a, b Held) Held {
	out := a.Clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// Key canonicalizes the receiver expression of a Lock/Unlock/Signal call.
func Key(info *types.Info, e ast.Expr) string {
	switch e := e.(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			if f, ok := sel.Obj().(*types.Var); ok && f.IsField() {
				if owner := namedRecv(sel.Recv()); owner != nil {
					return ownerKey(owner) + "." + f.Name()
				}
			}
		}
		// Package-qualified var: pkg.Mu.
		if obj, ok := info.Uses[e.Sel].(*types.Var); ok {
			return varKey(obj)
		}
	case *ast.Ident:
		if obj, ok := info.Uses[e].(*types.Var); ok {
			return varKey(obj)
		}
		// Defining occurrences (`var cond = sync.NewCond(&mu)`, `c := ...`)
		// live in Defs, not Uses.
		if obj, ok := info.Defs[e].(*types.Var); ok {
			return varKey(obj)
		}
	}
	return types.ExprString(e)
}

// FuncKey canonicalizes a function or method object: "<pkg>.<Func>" or
// "<pkg>.<Type>.<Method>". It is the key lock-acquisition summaries are
// exported under, so call sites in other packages can look them up.
func FuncKey(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if owner := namedRecv(sig.Recv().Type()); owner != nil {
			return ownerKey(owner) + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return lastPathElem(fn.Pkg().Path()) + "." + fn.Name()
	}
	return fn.Name()
}

// namedRecv dereferences a receiver type down to its named type, if any.
func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

func ownerKey(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() != nil {
		return lastPathElem(obj.Pkg().Path()) + "." + obj.Name()
	}
	return obj.Name()
}

func varKey(v *types.Var) string {
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return lastPathElem(v.Pkg().Path()) + "." + v.Name()
	}
	return v.Name()
}

// PkgShort returns the last element of a package's import path — the
// prefix every canonical name starts with.
func PkgShort(p *types.Package) string { return lastPathElem(p.Path()) }

func lastPathElem(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// MutexOpKind classifies a call against the sync mutex vocabulary.
type MutexOpKind int

const (
	OpNone MutexOpKind = iota
	OpLock
	OpUnlock
)

// MutexOp recognizes m.Lock/RLock/Unlock/RUnlock calls on sync mutexes and
// returns the canonical lock name and operation. Read and write locks share
// one name: for ordering and wakeup purposes they are the same resource.
func MutexOp(info *types.Info, e ast.Expr) (string, MutexOpKind) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", OpNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", OpNone
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", OpNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return Key(info, sel.X), OpLock
	case "Unlock", "RUnlock":
		return Key(info, sel.X), OpUnlock
	}
	return "", OpNone
}

// Walker drives a branch-aware traversal of one function body, tracking the
// set of locks held on each control-flow path. The walk mirrors the lockheld
// analyzer's semantics: an early-return branch's unlock does not leak into
// the fall-through path, `defer mu.Unlock()` holds the lock to function end,
// and function literals are walked with fresh (empty) state — their bodies
// run on their own call path or goroutine.
type Walker struct {
	Info *types.Info
	// OnAcquire fires when a lock is acquired; held is the set *before*
	// the acquisition.
	OnAcquire func(name string, pos token.Pos, held Held)
	// OnCall fires for every call expression that is not itself a mutex
	// operation, with the held set at the call site. Deferred calls and
	// goroutine launches are not reported (their bodies run under
	// unknowable lock state).
	OnCall func(call *ast.CallExpr, held Held)
}

// WalkFunc analyzes one function body with empty initial lock state.
func (w *Walker) WalkFunc(body *ast.BlockStmt) {
	w.walkStmts(body.List, Held{})
}

// walkStmts walks a statement list, threading lock state through it, and
// reports whether control definitely leaves the enclosing function or loop
// at the end (return, branch, panic).
func (w *Walker) walkStmts(list []ast.Stmt, held Held) (Held, bool) {
	for _, s := range list {
		var term bool
		held, term = w.walkStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (w *Walker) walkStmt(s ast.Stmt, held Held) (Held, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if mu, op := MutexOp(w.Info, s.X); op == OpLock {
			if w.OnAcquire != nil {
				w.OnAcquire(mu, s.Pos(), held)
			}
			held[mu] = s.Pos()
			return held, false
		} else if op == OpUnlock {
			delete(held, mu)
			return held, false
		}
		w.checkExpr(s.X, held)
		return held, isPanicCall(s.X)

	case *ast.DeferStmt:
		if _, op := MutexOp(w.Info, s.Call); op == OpUnlock {
			// Held until function end; nothing to remove.
			return held, false
		}
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, held)
		}
		w.walkFuncLits(s.Call)
		return held, false

	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			w.checkExpr(arg, held)
		}
		w.walkFuncLits(s.Call)
		return held, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.checkExpr(e, held)
		}
		return held, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.checkExpr(e, held)
					}
				}
			}
		}
		return held, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.checkExpr(e, held)
		}
		return held, true

	case *ast.BranchStmt:
		return held, true

	case *ast.IncDecStmt:
		w.checkExpr(s.X, held)
		return held, false

	case *ast.SendStmt:
		w.checkExpr(s.Chan, held)
		w.checkExpr(s.Value, held)
		return held, false

	case *ast.BlockStmt:
		return w.walkStmts(s.List, held)

	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		w.checkExpr(s.Cond, held)
		thenHeld, thenTerm := w.walkStmts(s.Body.List, held.Clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = w.walkStmt(s.Else, held.Clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return union(thenHeld, elseHeld), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.checkExpr(s.Cond, held)
		}
		bodyHeld, _ := w.walkStmts(s.Body.List, held.Clone())
		if s.Post != nil {
			w.walkStmt(s.Post, bodyHeld)
		}
		return union(held, bodyHeld), false

	case *ast.RangeStmt:
		w.checkExpr(s.X, held)
		bodyHeld, _ := w.walkStmts(s.Body.List, held.Clone())
		return union(held, bodyHeld), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.checkExpr(s.Tag, held)
		}
		return w.walkCases(s.Body, held)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = w.walkStmt(s.Init, held)
		}
		return w.walkCases(s.Body, held)

	case *ast.SelectStmt:
		out := held.Clone()
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			caseHeld, term := w.walkStmts(comm.Body, held.Clone())
			if !term {
				out = union(out, caseHeld)
			}
		}
		return out, false

	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, held)

	default:
		return held, false
	}
}

// walkCases merges the lock state of every non-terminating case clause. A
// switch is never treated as terminating: without a default clause the
// fall-through path exists.
func (w *Walker) walkCases(body *ast.BlockStmt, held Held) (Held, bool) {
	out := held.Clone()
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			w.checkExpr(e, held)
		}
		caseHeld, term := w.walkStmts(cc.Body, held.Clone())
		if !term {
			out = union(out, caseHeld)
		}
	}
	return out, false
}

// checkExpr reports calls inside e with the current held set. Function
// literals are walked with fresh state.
func (w *Walker) checkExpr(e ast.Expr, held Held) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.WalkFunc(n.Body)
			return false
		case *ast.CallExpr:
			if mu, op := MutexOp(w.Info, n); op != OpNone {
				// A lock op in expression position (rare: inside a bigger
				// expression) is still an acquisition event.
				if op == OpLock {
					if w.OnAcquire != nil {
						w.OnAcquire(mu, n.Pos(), held)
					}
					held[mu] = n.Pos()
				} else {
					delete(held, mu)
				}
				return true
			}
			if w.OnCall != nil {
				w.OnCall(n, held)
			}
		}
		return true
	})
}

// walkFuncLits analyzes any function literals among a call's fun/args with
// fresh lock state.
func (w *Walker) walkFuncLits(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			w.WalkFunc(fl.Body)
			return false
		}
		return true
	})
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// Callee resolves a call's static callee, or nil for dynamic calls and
// builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
