package lockorder_test

import (
	"testing"

	"repro/tools/acheronlint/analyzers/lockorder"
	"repro/tools/acheronlint/lintframe/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "lockorder")
}
