// Package lockorder fixtures: a miniature of the engine's commit pipeline
// with its declared partial order, plus every inversion shape the analyzer
// must catch — direct, through a same-package call, transitive, via an
// `acquires` annotation — and an undeclared cycle.
package lockorder

import "sync"

// acheron:locks order lockorder.Pipeline.commitMu < lockorder.DB.mu < lockorder.Pipeline.qmu
// acheron:locks order lockorder.Pipeline.commitMu < lockorder.DB.flushMu

type DB struct {
	mu      sync.Mutex
	flushMu sync.Mutex
	up      sync.Mutex
	down    sync.Mutex
	p       *Pipeline
}

type Pipeline struct {
	commitMu sync.Mutex
	qmu      sync.Mutex
}

// commit follows the declared order: commitMu, then d.mu, then qmu.
func (d *DB) commit() {
	d.p.commitMu.Lock()
	d.mu.Lock()
	d.p.qmu.Lock()
	d.p.qmu.Unlock()
	d.mu.Unlock()
	d.p.commitMu.Unlock()
}

// inverted acquires commitMu while holding d.mu: the deadlock that
// motivated the declared order.
func (d *DB) inverted() {
	d.mu.Lock()
	d.p.commitMu.Lock() // want `acquires "lockorder.Pipeline.commitMu" while "lockorder.DB.mu" is held, inverting the declared lock order`
	d.p.commitMu.Unlock()
	d.mu.Unlock()
}

// lockLow takes d.mu on behalf of callers.
func (d *DB) lockLow() {
	d.mu.Lock()
	d.mu.Unlock()
}

// throughCall inverts mu < qmu through a same-package call: the walk alone
// sees no Lock here, the call-graph fixed point does.
func (d *DB) throughCall() {
	d.p.qmu.Lock()
	d.lockLow() // want `acquires "lockorder.DB.mu" while "lockorder.Pipeline.qmu" is held, inverting the declared lock order`
	d.p.qmu.Unlock()
}

// transitively inverts commitMu < qmu, an edge only the closure of the
// declared chain contains.
func (d *DB) transitively() {
	d.p.qmu.Lock()
	d.p.commitMu.Lock() // want `acquires "lockorder.Pipeline.commitMu" while "lockorder.Pipeline.qmu" is held, inverting the declared lock order`
	d.p.commitMu.Unlock()
	d.p.qmu.Unlock()
}

// opaqueCommit stands in for a function whose acquisition the walk cannot
// see (say, a callback into another layer); the annotation declares it.
//
// acheron:locks acquires lockorder.Pipeline.commitMu
func (d *DB) opaqueCommit() {
	d.run(func() {})
}

func (d *DB) run(f func()) { f() }

// viaAnnotation holds flushMu and calls the annotated function: the
// inversion is visible only through the acquires annotation.
func (d *DB) viaAnnotation() {
	d.flushMu.Lock()
	d.opaqueCommit() // want `acquires "lockorder.Pipeline.commitMu" while "lockorder.DB.flushMu" is held, inverting the declared lock order`
	d.flushMu.Unlock()
}

// upThenDown and downThenUp form a cycle on locks with no declared order:
// both directions are reported.
func (d *DB) upThenDown() {
	d.up.Lock()
	d.down.Lock() // want `lock-order cycle: "lockorder.DB.down" acquired while "lockorder.DB.up" is held here, and in the reverse order at`
	d.down.Unlock()
	d.up.Unlock()
}

func (d *DB) downThenUp() {
	d.down.Lock()
	d.up.Lock() // want `lock-order cycle: "lockorder.DB.up" acquired while "lockorder.DB.down" is held here, and in the reverse order at`
	d.up.Unlock()
	d.down.Unlock()
}

// earlyUnlock releases d.mu before taking commitMu on the fall-through
// path: no inversion, the branch-aware walk must not leak the early
// return's state.
func (d *DB) earlyUnlock(fast bool) {
	d.mu.Lock()
	if fast {
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	d.p.commitMu.Lock()
	d.p.commitMu.Unlock()
}
