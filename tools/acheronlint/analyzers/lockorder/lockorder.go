// Package lockorder machine-checks the engine's lock-acquisition order.
//
// The commit pipeline's correctness rests on a documented partial order —
// commitMu before d.mu, pickMu before d.mu — that until now lived in
// comments (internal/core/commit.go). This analyzer turns it into a vet
// gate: it builds the package's acquire graph from Lock/RLock call sites
// (an edge A→B for every site that acquires B while holding A, including
// through same-package calls, resolved to a fixed point) and reports
//
//   - any acquisition that inverts a declared order, and
//   - any two locks acquired in both orders (a cycle), declared or not.
//
// The declared order comes from annotations anywhere in the package:
//
//	// acheron:locks order core.commitPipeline.commitMu < core.DB.mu
//
// with canonical lock names (<pkg>.<Type>.<field> for struct fields,
// <pkg>.<var> for package vars; read and write locks share a name). A chain
// `A < B < C` declares A<B and B<C; the order is closed transitively.
//
// Functions whose acquisitions the walk cannot see (callbacks, calls into
// packages outside the analyzed pattern) declare them on their doc comment:
//
//	// acheron:locks acquires manifest.VersionSet.commitMu
//
// Cross-package call sites are covered by facts: every package exports the
// may-acquire summary of its functions and its declared order edges, and
// importing packages fold them into their own graphs — so core calling
// manifest.LogAndApply is checked against manifest's locks without
// re-reading manifest's source.
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/tools/acheronlint/analyzers/internal/lockflow"
	"repro/tools/acheronlint/lintframe"
)

// Analyzer is the lockorder analyzer.
var Analyzer = &lintframe.Analyzer{
	Name: "lockorder",
	Doc:  "flags lock acquisitions that invert the declared partial order or form cycles in the acquire graph",
	Run:  run,
}

// acquireEvent is one Lock call site with the locks held when it ran.
type acquireEvent struct {
	name string
	pos  token.Pos
	held lockflow.Held
}

// callEvent is one call site with the locks held around it.
type callEvent struct {
	callee *types.Func
	pos    token.Pos
	held   lockflow.Held
}

// funcInfo is the per-function harvest of one walk.
type funcInfo struct {
	fn       *types.Func
	acquires []acquireEvent
	calls    []callEvent
	// annotated holds locks declared via `// acheron:locks acquires`.
	annotated []string
}

type edge struct{ from, to string }

func run(pass *lintframe.Pass) error {
	declared, annotated := parseAnnotations(pass)

	// Fold in dependency facts: declared orders and function summaries.
	factAcquires := make(map[string][]string)
	for _, f := range pass.ImportedFacts("acquires") {
		factAcquires[f.Object] = strings.Split(f.Data, ",")
	}
	for _, f := range pass.ImportedFacts("order") {
		if from, to, ok := strings.Cut(f.Data, "<"); ok {
			declared = append(declared, edge{from, to})
		}
	}

	// Walk every function, including those in test files: test goroutines
	// take the same engine locks, and an inversion there deadlocks CI just
	// as surely. (//lint:ignore remains the escape for deliberate abuse.)
	var infos []*funcInfo
	byFunc := make(map[*types.Func]*funcInfo)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			info := &funcInfo{fn: fn, annotated: annotated[fn]}
			w := &lockflow.Walker{
				Info: pass.TypesInfo,
				OnAcquire: func(name string, pos token.Pos, held lockflow.Held) {
					info.acquires = append(info.acquires, acquireEvent{name, pos, held.Clone()})
				},
				OnCall: func(call *ast.CallExpr, held lockflow.Held) {
					callee := lockflow.Callee(pass.TypesInfo, call)
					if callee == nil {
						return
					}
					info.calls = append(info.calls, callEvent{callee, call.Pos(), held.Clone()})
				},
			}
			w.WalkFunc(fd.Body)
			infos = append(infos, info)
			byFunc[fn] = info
		}
	}

	mayAcquire := solveMayAcquire(infos, byFunc, factAcquires)

	// Build the observed acquire graph: first position wins per edge, with
	// non-test positions preferred — reports at test positions are
	// suppressed, so a test-file edge must not shadow a production one.
	edges := make(map[edge]token.Pos)
	record := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		e := edge{from, to}
		old, ok := edges[e]
		switch {
		case !ok:
			edges[e] = pos
		case pass.IsTestFile(old) != pass.IsTestFile(pos):
			if pass.IsTestFile(old) {
				edges[e] = pos
			}
		case pos < old:
			edges[e] = pos
		}
	}
	for _, info := range infos {
		for _, a := range info.acquires {
			for held := range a.held {
				record(held, a.name, a.pos)
			}
		}
		for _, c := range info.calls {
			if len(c.held) == 0 {
				continue
			}
			var acquired map[string]bool
			if callee, ok := byFunc[c.callee]; ok {
				acquired = mayAcquire[callee.fn]
			} else if locks, ok := factAcquires[lockflow.FuncKey(c.callee)]; ok {
				acquired = toSet(locks)
			}
			for held := range c.held {
				for lock := range acquired {
					record(held, lock, c.pos)
				}
			}
		}
	}

	// Close the declared order transitively.
	closure := transitiveClosure(declared)

	// Report inversions of the declared order, then undeclared cycles.
	var pairs []edge
	for e := range edges {
		pairs = append(pairs, e)
	}
	sort.Slice(pairs, func(i, j int) bool { return edges[pairs[i]] < edges[pairs[j]] })
	for _, e := range pairs {
		pos := edges[e]
		if pass.IsTestFile(pos) {
			continue
		}
		if closure[e.to][e.from] {
			pass.Reportf(pos,
				"acquires %q while %q is held, inverting the declared lock order %s < %s",
				e.to, e.from, e.to, e.from)
			continue
		}
		rev := edge{e.to, e.from}
		if _, ok := edges[rev]; ok && !closure[e.from][e.to] {
			pass.Reportf(pos,
				"lock-order cycle: %q acquired while %q is held here, and in the reverse order at %s",
				e.to, e.from, pass.Fset.Position(edges[rev]))
		}
	}

	// Export facts for dependent packages.
	for _, d := range declaredInPackage(pass, declared) {
		pass.ExportFact("", "order", d.from+"<"+d.to)
	}
	var fns []*funcInfo
	fns = append(fns, infos...)
	sort.Slice(fns, func(i, j int) bool {
		return lockflow.FuncKey(fns[i].fn) < lockflow.FuncKey(fns[j].fn)
	})
	for _, info := range fns {
		locks := mayAcquire[info.fn]
		if len(locks) == 0 {
			continue
		}
		names := make([]string, 0, len(locks))
		for l := range locks {
			names = append(names, l)
		}
		sort.Strings(names)
		pass.ExportFact(lockflow.FuncKey(info.fn), "acquires", strings.Join(names, ","))
	}
	return nil
}

// solveMayAcquire computes, for every package function, the set of locks it
// may acquire directly or through same-package callees (to a fixed point)
// and through fact-summarized cross-package callees.
func solveMayAcquire(infos []*funcInfo, byFunc map[*types.Func]*funcInfo, factAcquires map[string][]string) map[*types.Func]map[string]bool {
	out := make(map[*types.Func]map[string]bool, len(infos))
	for _, info := range infos {
		set := make(map[string]bool)
		for _, a := range info.acquires {
			set[a.name] = true
		}
		for _, l := range info.annotated {
			set[l] = true
		}
		for _, c := range info.calls {
			if _, samePkg := byFunc[c.callee]; samePkg {
				continue // folded in by the fixed point below
			}
			for _, l := range factAcquires[lockflow.FuncKey(c.callee)] {
				set[l] = true
			}
		}
		out[info.fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			set := out[info.fn]
			for _, c := range info.calls {
				callee, ok := byFunc[c.callee]
				if !ok {
					continue
				}
				for l := range out[callee.fn] {
					if !set[l] {
						set[l] = true
						changed = true
					}
				}
			}
		}
	}
	return out
}

// parseAnnotations extracts `// acheron:locks order ...` declarations and
// `// acheron:locks acquires ...` function summaries from the package.
func parseAnnotations(pass *lintframe.Pass) ([]edge, map[*types.Func][]string) {
	var declared []edge
	annotated := make(map[*types.Func][]string)
	for _, file := range pass.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "// acheron:locks order ")
				if !ok {
					continue
				}
				names := strings.Split(rest, "<")
				for i := 0; i+1 < len(names); i++ {
					from := strings.TrimSpace(names[i])
					to := strings.TrimSpace(names[i+1])
					if from != "" && to != "" {
						declared = append(declared, edge{from, to})
					}
				}
			}
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(c.Text), "// acheron:locks acquires ")
				if !ok {
					continue
				}
				for _, name := range strings.Fields(rest) {
					annotated[fn] = append(annotated[fn], strings.TrimSuffix(name, ","))
				}
			}
		}
	}
	return declared, annotated
}

// declaredInPackage filters the declared edges back down to the ones this
// package's own annotations contributed (imported facts must not be
// re-exported, or every downstream package would accrete duplicates).
func declaredInPackage(pass *lintframe.Pass, declared []edge) []edge {
	imported := make(map[edge]bool)
	for _, f := range pass.ImportedFacts("order") {
		if from, to, ok := strings.Cut(f.Data, "<"); ok {
			imported[edge{from, to}] = true
		}
	}
	var out []edge
	seen := make(map[edge]bool)
	for _, e := range declared {
		if !imported[e] && !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].from != out[j].from {
			return out[i].from < out[j].from
		}
		return out[i].to < out[j].to
	})
	return out
}

// transitiveClosure computes reachability over the declared edges:
// closure[a][b] means a is declared (possibly through intermediates) to be
// acquired before b.
func transitiveClosure(declared []edge) map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	add := func(a, b string) bool {
		if out[a] == nil {
			out[a] = make(map[string]bool)
		}
		if out[a][b] {
			return false
		}
		out[a][b] = true
		return true
	}
	for _, e := range declared {
		add(e.from, e.to)
	}
	for changed := true; changed; {
		changed = false
		for a, reach := range out {
			for b := range reach {
				for c := range out[b] {
					if add(a, c) {
						changed = true
					}
				}
			}
		}
	}
	return out
}

func toSet(ss []string) map[string]bool {
	out := make(map[string]bool, len(ss))
	for _, s := range ss {
		out[s] = true
	}
	return out
}
