// Package lockheld flags I/O performed while a sync.Mutex or sync.RWMutex
// locked in the same function is still held, plus blocking channel sends
// under such a lock.
//
// Holding the engine's mutexes across disk I/O is the classic LSM stall:
// every Put blocks behind a manifest fsync, every read blocks behind a
// flush. The analyzer tracks lock state function-locally with a lightweight
// branch-aware walk: Lock/RLock adds the mutex, Unlock/RUnlock on the same
// control-flow path removes it, `defer mu.Unlock()` holds it to function
// end, and a branch that unlocks-then-returns does not leak its unlock into
// the fall-through path. I/O is recognized by callee: any os.* function, any
// vfs FS/File method, and the durability entry points of the wal, sstable,
// and manifest packages. Function literals run on their own goroutine or
// call path and are analyzed with fresh state.
//
// The analysis is intentionally function-local: a helper that requires "mu
// held" documents that contract at its call sites, which is where the
// //lint:ignore lockheld <reason> annotation (for intentional
// serialization, e.g. WAL append under the commit mutex) belongs.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/tools/acheronlint/lintframe"
)

// Analyzer is the lockheld analyzer.
var Analyzer = &lintframe.Analyzer{
	Name: "lockheld",
	Doc:  "flags I/O calls and blocking channel sends while a mutex locked in the same function is held",
	Run:  run,
}

// ioMethods maps package-path suffixes to the callee names treated as I/O.
// An empty name set means every *method* in the package counts (used for
// vfs, whose FS/File implementations are wholly I/O); otherwise both
// methods and package-level functions with a listed name count.
var ioMethods = map[string]map[string]bool{
	"internal/vfs":         nil,
	"internal/vfs/errorfs": nil,
	"internal/wal": {
		"AddRecord": true, "AddRecords": true, "Sync": true, "Close": true,
		"NewReader": true,
	},
	"internal/sstable": {
		"Open": true, "NewReader": true, "Get": true, "NewIter": true,
		"Add": true, "AddRangeTombstone": true, "Finish": true, "Close": true,
	},
	"internal/manifest": {
		"LogAndApply": true, "LogAndApplyFunc": true, "LogAndApplyInstall": true,
		"Create": true, "Load": true, "Close": true,
	},
}

func run(pass *lintframe.Pass) error {
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		if pass.IsTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd.Body)
			}
		}
	}
	return nil
}

type checker struct {
	pass *lintframe.Pass
}

// lockState maps a mutex expression (rendered as source, e.g. "d.mu") to
// the position where it was locked.
type lockState map[string]token.Pos

func (ls lockState) clone() lockState {
	out := make(lockState, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

// checkFunc analyzes one function body with empty initial lock state.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	c.walkStmts(body.List, lockState{})
}

// walkStmts walks a statement list, threading lock state through it, and
// reports whether control definitely leaves the enclosing function or loop
// at the end (return, branch, panic).
func (c *checker) walkStmts(list []ast.Stmt, held lockState) (lockState, bool) {
	for _, s := range list {
		var term bool
		held, term = c.walkStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (c *checker) walkStmt(s ast.Stmt, held lockState) (lockState, bool) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if mu, op := c.mutexOp(s.X); op == opLock {
			held[mu] = s.Pos()
			return held, false
		} else if op == opUnlock {
			delete(held, mu)
			return held, false
		}
		c.checkExpr(s.X, held)
		return held, isPanicCall(s.X)

	case *ast.DeferStmt:
		if _, op := c.mutexOp(s.Call); op == opUnlock {
			// Held until function end; nothing to remove. Later explicit
			// I/O in this function still runs under the lock.
			return held, false
		}
		// The deferred call itself runs at function exit with unknowable
		// lock state; only its argument expressions evaluate now.
		for _, arg := range s.Call.Args {
			c.checkExpr(arg, held)
		}
		c.checkFuncLits(s.Call)
		return held, false

	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			c.checkExpr(arg, held)
		}
		c.checkFuncLits(s.Call) // goroutine body starts with its own state
		return held, false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.checkExpr(e, held)
		}
		for _, e := range s.Lhs {
			c.checkExpr(e, held)
		}
		return held, false

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						c.checkExpr(e, held)
					}
				}
			}
		}
		return held, false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.checkExpr(e, held)
		}
		return held, true

	case *ast.BranchStmt:
		return held, true

	case *ast.IncDecStmt:
		c.checkExpr(s.X, held)
		return held, false

	case *ast.SendStmt:
		c.checkExpr(s.Chan, held)
		c.checkExpr(s.Value, held)
		c.reportSend(s.Arrow, held)
		return held, false

	case *ast.BlockStmt:
		return c.walkStmts(s.List, held)

	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		thenHeld, thenTerm := c.walkStmts(s.Body.List, held.clone())
		elseHeld, elseTerm := held, false
		if s.Else != nil {
			elseHeld, elseTerm = c.walkStmt(s.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return union(thenHeld, elseHeld), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		bodyHeld, _ := c.walkStmts(s.Body.List, held.clone())
		if s.Post != nil {
			c.walkStmt(s.Post, bodyHeld)
		}
		return union(held, bodyHeld), false

	case *ast.RangeStmt:
		c.checkExpr(s.X, held)
		bodyHeld, _ := c.walkStmts(s.Body.List, held.clone())
		return union(held, bodyHeld), false

	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		return c.walkCases(s.Body, held)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = c.walkStmt(s.Init, held)
		}
		return c.walkCases(s.Body, held)

	case *ast.SelectStmt:
		blocking := true
		for _, cl := range s.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
				blocking = false // has a default clause
			}
		}
		out := held.clone()
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			if send, ok := comm.Comm.(*ast.SendStmt); ok && blocking {
				c.reportSend(send.Arrow, held)
			}
			caseHeld, term := c.walkStmts(comm.Body, held.clone())
			if !term {
				out = union(out, caseHeld)
			}
		}
		return out, false

	case *ast.LabeledStmt:
		return c.walkStmt(s.Stmt, held)

	default:
		return held, false
	}
}

// walkCases merges the lock state of every non-terminating case clause. A
// switch is never treated as terminating: without a default clause the
// fall-through path exists.
func (c *checker) walkCases(body *ast.BlockStmt, held lockState) (lockState, bool) {
	out := held.clone()
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			c.checkExpr(e, held)
		}
		caseHeld, term := c.walkStmts(cc.Body, held.clone())
		if !term {
			out = union(out, caseHeld)
		}
	}
	return out, false
}

// checkExpr reports I/O calls inside e performed while locks are held.
// Function literals are skipped here and analyzed with fresh state.
func (c *checker) checkExpr(e ast.Expr, held lockState) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.checkFunc(n.Body)
			return false
		case *ast.CallExpr:
			if len(held) > 0 {
				if name := c.ioCallee(n); name != "" {
					mu, pos := anyLock(held)
					c.pass.Reportf(n.Pos(),
						"I/O call %s while %q is held (locked at %s); hoist the I/O out of the critical section or annotate with //lint:ignore lockheld <reason>",
						name, mu, c.pass.Fset.Position(pos))
				}
			}
		}
		return true
	})
}

// checkFuncLits analyzes any function literals among a call's fun/args.
func (c *checker) checkFuncLits(call *ast.CallExpr) {
	ast.Inspect(call, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			c.checkFunc(fl.Body)
			return false
		}
		return true
	})
}

func (c *checker) reportSend(pos token.Pos, held lockState) {
	if len(held) == 0 {
		return
	}
	mu, lpos := anyLock(held)
	c.pass.Reportf(pos,
		"blocking channel send while %q is held (locked at %s); send outside the critical section or use a non-blocking select", mu, c.pass.Fset.Position(lpos))
}

type mutexOpKind int

const (
	opNone mutexOpKind = iota
	opLock
	opUnlock
)

// mutexOp recognizes m.Lock/RLock/Unlock/RUnlock calls on sync mutexes and
// returns the rendered mutex expression and operation.
func (c *checker) mutexOp(e ast.Expr) (string, mutexOpKind) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", opNone
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", opNone
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), opLock
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), opUnlock
	}
	return "", opNone
}

// ioCallee returns a printable name if the call's callee is an I/O function
// per ioMethods or the os package, else "". Method calls are attributed to
// the receiver's declared type as well as the method's declaring package,
// so promoted interface methods (vfs.File.Close from io.Closer) count.
func (c *checker) ioCallee(call *ast.CallExpr) string {
	var id *ast.Ident
	var paths []string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
		paths = lintframe.CalleePkgPaths(c.pass.TypesInfo, fun)
	case *ast.Ident:
		id = fun
	default:
		return ""
	}
	fn, ok := c.pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	if len(paths) == 0 {
		paths = []string{fn.Pkg().Path()}
	}
	sig, _ := fn.Type().(*types.Signature)
	isMethod := sig != nil && sig.Recv() != nil
	for _, path := range paths {
		if path == "os" {
			if isMethod {
				return types.ExprString(call.Fun)
			}
			return "os." + fn.Name()
		}
		for suf, names := range ioMethods {
			if !strings.HasSuffix(path, suf) {
				continue
			}
			if names == nil {
				if isMethod {
					return types.ExprString(call.Fun)
				}
				continue
			}
			if names[fn.Name()] {
				return types.ExprString(call.Fun)
			}
		}
	}
	return ""
}

// anyLock returns one held mutex (the lexically smallest for determinism).
func anyLock(held lockState) (string, token.Pos) {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best, held[best]
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// union merges two lock states, preferring a's positions.
func union(a, b lockState) lockState {
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}
