package lockheld_test

import (
	"testing"

	"repro/tools/acheronlint/analyzers/lockheld"
	"repro/tools/acheronlint/lintframe/analysistest"
)

func TestLockHeld(t *testing.T) {
	analysistest.Run(t, "testdata", lockheld.Analyzer, "lockheld")
}
