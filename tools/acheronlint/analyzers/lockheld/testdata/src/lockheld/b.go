package lockheld

import (
	"sync"

	"repro/internal/vfs"
)

// vfsUnderLock exercises the engine-specific callee set: any vfs FS or File
// method is I/O.
func vfsUnderLock(fs vfs.FS, mu *sync.Mutex) error {
	mu.Lock()
	err := fs.MkdirAll("dir") // want `I/O call fs.MkdirAll while "mu" is held`
	mu.Unlock()
	return err
}

// vfsOutsideLock is the fixed shape.
func vfsOutsideLock(fs vfs.FS, mu *sync.Mutex) error {
	mu.Lock()
	dir := "dir"
	mu.Unlock()
	return fs.MkdirAll(dir)
}

// rwlockRead flags I/O under read locks too: a stalled RLock holder blocks
// every writer behind it.
func rwlockRead(f vfs.File, mu *sync.RWMutex) error {
	mu.RLock()
	err := f.Sync() // want `I/O call f.Sync while "mu" is held`
	mu.RUnlock()
	return err
}
