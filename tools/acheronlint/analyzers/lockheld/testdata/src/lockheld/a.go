package lockheld

import (
	"os"
	"sync"
)

type engine struct {
	mu sync.Mutex
	ch chan int
}

// ioUnderLock is the stall pattern: disk I/O inside the critical section.
func (e *engine) ioUnderLock() {
	e.mu.Lock()
	os.Remove("wal.log") // want `I/O call os.Remove while "e.mu" is held`
	e.ch <- 1            // want `blocking channel send while "e.mu" is held`
	e.mu.Unlock()
}

// ioAfterUnlock hoists the I/O out; nothing is flagged.
func (e *engine) ioAfterUnlock() {
	e.mu.Lock()
	n := 1
	e.mu.Unlock()
	os.Remove("wal.log")
	e.ch <- n
}

// earlyReturn must not treat the error path's unlock as releasing the lock
// on the fall-through path.
func (e *engine) earlyReturn(closed bool) error {
	e.mu.Lock()
	if closed {
		e.mu.Unlock()
		return nil
	}
	os.Remove("wal.log") // want `I/O call os.Remove while "e.mu" is held`
	e.mu.Unlock()
	return nil
}

// deferUnlock holds the lock to function end.
func (e *engine) deferUnlock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	os.Remove("wal.log") // want `I/O call os.Remove while "e.mu" is held`
}

// assignedIO catches I/O whose result is assigned, not just bare calls.
func (e *engine) assignedIO() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	f, err := os.Create("tmp") // want `I/O call os.Create while "e.mu" is held`
	if err != nil {
		return err
	}
	_ = f
	return nil
}

// nonBlockingSend uses a select with default, which cannot stall.
func (e *engine) nonBlockingSend() {
	e.mu.Lock()
	select {
	case e.ch <- 1:
	default:
	}
	e.mu.Unlock()
}

// goroutineFresh starts with its own lock state: the spawned goroutine does
// not inherit the parent's critical section.
func (e *engine) goroutineFresh() {
	e.mu.Lock()
	go func() {
		os.Remove("wal.log")
	}()
	e.mu.Unlock()
}

// annotated records deliberate serialization.
func (e *engine) annotated() {
	e.mu.Lock()
	//lint:ignore lockheld commit pipeline requires WAL append under mu
	os.Remove("wal.log")
	e.mu.Unlock()
}
