package errsentinel_test

import (
	"testing"

	"repro/tools/acheronlint/analyzers/errsentinel"
	"repro/tools/acheronlint/lintframe/analysistest"
)

func TestErrSentinel(t *testing.T) {
	analysistest.Run(t, "testdata", errsentinel.Analyzer, "errsentinel")
}
