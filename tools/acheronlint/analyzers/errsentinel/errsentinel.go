// Package errsentinel enforces wrap-transparent error matching.
//
// The engine's error surfaces are sentinels — wal.ErrCorrupt, vfs.ErrNoSpace,
// errorfs.ErrInjected, core.ErrNotFound — that arrive wrapped: the WAL wraps
// ErrCorrupt in a CorruptionError carrying offset and reason, errorfs joins
// ErrInjected with the operation it failed. A direct `err == wal.ErrCorrupt`
// silently stops matching the moment a layer adds context, which is exactly
// how the recovery path once missed injected corruption. The analyzer flags:
//
//   - `err == Sentinel` / `err != Sentinel` comparisons (use errors.Is);
//     comparisons with nil are fine;
//   - switch statements over an error value whose cases are sentinels
//     (each case is an == in disguise);
//   - type assertions and type switches from the error interface to a
//     concrete error type (use errors.As, which unwraps).
//
// A sentinel is a package-level error variable named Err*, plus io.EOF and
// the context package's Canceled / DeadlineExceeded (which the admission
// gate and the stall path deliver wrapped). Deliberate identity checks
// (e.g. in the errors package's own tests) suppress with
// `//lint:ignore errsentinel <reason>`.
package errsentinel

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/tools/acheronlint/lintframe"
)

// Analyzer is the errsentinel analyzer.
var Analyzer = &lintframe.Analyzer{
	Name: "errsentinel",
	Doc:  "flags sentinel errors matched with == or type-switched concretely instead of errors.Is/errors.As",
	Run:  run,
}

func run(pass *lintframe.Pass) error {
	for _, file := range pass.Files {
		if pass.IsTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.SwitchStmt:
				checkValueSwitch(pass, n)
			case *ast.TypeAssertExpr:
				if n.Type != nil { // Type==nil is the x.(type) of a type switch
					checkAssert(pass, n, n.Type)
				}
			case *ast.TypeSwitchStmt:
				checkTypeSwitch(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkComparison flags `err == Sentinel` and `err != Sentinel`.
func checkComparison(pass *lintframe.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, operand := range [...]ast.Expr{be.X, be.Y} {
		if s := sentinelOf(pass.TypesInfo, operand); s != nil {
			pass.Reportf(be.Pos(),
				"sentinel error %s compared with %s; wrapped errors never match — use errors.Is(err, %s)",
				s.Name(), be.Op, qualified(s))
			return
		}
	}
}

// checkValueSwitch flags `switch err { case Sentinel: }`: every case arm is
// an identity comparison.
func checkValueSwitch(pass *lintframe.Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if t := pass.TypesInfo.TypeOf(sw.Tag); t == nil || !isErrorInterface(t) {
		return
	}
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if s := sentinelOf(pass.TypesInfo, e); s != nil {
				pass.Reportf(e.Pos(),
					"switch case compares error to sentinel %s by identity; wrapped errors never match — use errors.Is(err, %s)",
					s.Name(), qualified(s))
			}
		}
	}
}

// checkAssert flags `err.(*CorruptionError)`-style assertions from the error
// interface to a concrete error type.
func checkAssert(pass *lintframe.Pass, ta *ast.TypeAssertExpr, typeExpr ast.Expr) {
	if !isErrorInterface(pass.TypesInfo.TypeOf(ta.X)) {
		return
	}
	t := pass.TypesInfo.TypeOf(typeExpr)
	if t == nil || !concreteError(t) {
		return
	}
	pass.Reportf(ta.Pos(),
		"type assertion from error to concrete %s sees only the outermost wrapper; use errors.As",
		types.TypeString(t, func(p *types.Package) string { return p.Name() }))
}

// checkTypeSwitch flags `switch err.(type) { case *CorruptionError: }`.
func checkTypeSwitch(pass *lintframe.Pass, sw *ast.TypeSwitchStmt) {
	var ta *ast.TypeAssertExpr
	switch s := sw.Assign.(type) {
	case *ast.ExprStmt:
		ta, _ = ast.Unparen(s.X).(*ast.TypeAssertExpr)
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			ta, _ = ast.Unparen(s.Rhs[0]).(*ast.TypeAssertExpr)
		}
	}
	if ta == nil || !isErrorInterface(pass.TypesInfo.TypeOf(ta.X)) {
		return
	}
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			t := pass.TypesInfo.TypeOf(e)
			if t == nil || !concreteError(t) {
				continue
			}
			pass.Reportf(e.Pos(),
				"type switch from error to concrete %s sees only the outermost wrapper; use errors.As",
				types.TypeString(t, func(p *types.Package) string { return p.Name() }))
		}
	}
}

// sentinelOf returns the sentinel variable e names, or nil: a package-level
// error-typed var named Err*, or io.EOF.
func sentinelOf(info *types.Info, e ast.Expr) *types.Var {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !implementsError(v.Type()) {
		return nil
	}
	name := v.Name()
	if len(name) >= 3 && name[:3] == "Err" {
		return v
	}
	if v.Pkg().Path() == "io" && (name == "EOF" || name == "ErrUnexpectedEOF") {
		return v
	}
	// The context package's sentinels break the Err* naming convention but
	// arrive wrapped all the same: the admission gate wraps DeadlineExceeded
	// under ErrOverloaded, and cancelled commits wrap Canceled with the
	// queue position. Identity checks against them are exactly the bug this
	// analyzer exists to catch.
	if v.Pkg().Path() == "context" && (name == "Canceled" || name == "DeadlineExceeded") {
		return v
	}
	return nil
}

// qualified renders a sentinel as pkg.Name for the diagnostic.
func qualified(v *types.Var) string {
	return v.Pkg().Name() + "." + v.Name()
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorInterface reports whether t is an interface type that satisfies
// error — the static type a wrapped sentinel travels under.
func isErrorInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Interface); !ok {
		return false
	}
	return types.Implements(t, errorType)
}

// concreteError reports whether t is a non-interface type implementing
// error (possibly via pointer receiver when t is a pointer).
func concreteError(t types.Type) bool {
	if _, ok := t.Underlying().(*types.Interface); ok {
		return false
	}
	return types.Implements(t, errorType)
}

// implementsError reports whether a value of type t can hold or be an
// error (sentinels are usually declared as `var Err = errors.New(...)`, so
// their static type is the error interface itself).
func implementsError(t types.Type) bool {
	return types.Implements(t, errorType) || types.Implements(types.NewPointer(t), errorType)
}
