// Package errsentinel fixtures: identity matching of sentinel errors and
// concrete-type assertions that wrapping silently defeats.
package errsentinel

import (
	"context"
	"errors"
	"io"
)

var ErrCorrupt = errors.New("corrupt")
var ErrNoSpace = errors.New("no space")

// WrapError is a concrete error carrying context, wal.CorruptionError-style.
type WrapError struct {
	Off int64
}

func (e *WrapError) Error() string { return "wrapped" }

func eqlBad(err error) bool {
	return err == ErrCorrupt // want `sentinel error ErrCorrupt compared with ==`
}

func neqBad(err error) bool {
	return err != io.EOF // want `sentinel error EOF compared with !=`
}

func qualifiedBad(err error) bool {
	return errors.Unwrap(err) == io.ErrUnexpectedEOF // want `sentinel error ErrUnexpectedEOF compared with ==`
}

func isGood(err error) bool {
	return errors.Is(err, ErrCorrupt) || errors.Is(err, io.EOF)
}

// The context sentinels break the Err* naming convention but arrive wrapped
// all the same (admission and stall timeouts wrap DeadlineExceeded).
func ctxEqlBad(err error) bool {
	return err == context.DeadlineExceeded // want `sentinel error DeadlineExceeded compared with ==`
}

func ctxNeqBad(err error) bool {
	return err != context.Canceled // want `sentinel error Canceled compared with !=`
}

func ctxSwitchBad(err error) int {
	switch err {
	case context.Canceled: // want `switch case compares error to sentinel Canceled by identity`
		return 1
	}
	return 0
}

func ctxIsGood(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

func nilGood(err error) bool {
	return err == nil || err != nil
}

func switchBad(err error) int {
	switch err {
	case nil:
		return 0
	case ErrCorrupt: // want `switch case compares error to sentinel ErrCorrupt by identity`
		return 1
	case ErrNoSpace: // want `switch case compares error to sentinel ErrNoSpace by identity`
		return 2
	}
	return 3
}

func assertBad(err error) int64 {
	if we, ok := err.(*WrapError); ok { // want `type assertion from error to concrete \*errsentinel.WrapError`
		return we.Off
	}
	return 0
}

func typeSwitchBad(err error) int64 {
	switch e := err.(type) {
	case *WrapError: // want `type switch from error to concrete \*errsentinel.WrapError`
		return e.Off
	default:
		return 0
	}
}

func asGood(err error) int64 {
	var we *WrapError
	if errors.As(err, &we) {
		return we.Off
	}
	return 0
}

// Comparing two locals is not a sentinel match.
func localsGood(a, b error) bool {
	return a == b
}

// A type switch over a non-error interface is out of scope.
func anySwitch(v any) int {
	switch v.(type) {
	case *WrapError:
		return 1
	}
	return 0
}

// The server maps engine errors onto wire codes; every sentinel it
// classifies arrives wrapped (fmt.Errorf %w chains through the router and
// the client), so identity checks misclassify.
var ErrOverloaded = errors.New("overloaded")
var ErrClosed = errors.New("closed")

func classifyBad(err error) int {
	if err == ErrOverloaded { // want `sentinel error ErrOverloaded compared with ==`
		return 1
	}
	switch err {
	case ErrClosed: // want `switch case compares error to sentinel ErrClosed by identity`
		return 2
	}
	return 0
}

func classifyGood(err error) int {
	if errors.Is(err, ErrOverloaded) {
		return 1
	}
	if errors.Is(err, ErrClosed) {
		return 2
	}
	return 0
}
