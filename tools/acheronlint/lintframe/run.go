package lintframe

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Main is the entry point shared by the acheronlint binary. It detects the
// `go vet -vettool` unitchecker protocol (a single *.cfg argument, plus the
// -V=full and -flags probes the go command sends first) and otherwise runs
// as a standalone checker over the given package patterns.
//
// Exit codes follow vet conventions: 0 clean, 1 usage/load failure,
// 2 diagnostics reported.
func Main(analyzers ...*Analyzer) {
	args := os.Args[1:]

	// go vet protocol probes.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			// The go command caches vet results keyed on this line.
			fmt.Printf("acheronlint version 1 buildID=%s\n", buildFingerprint(analyzers))
			return
		case a == "-flags" || a == "--flags":
			// No analyzer-selection flags are exposed: the suite always
			// runs whole. An empty list tells the go command to pass none.
			fmt.Println("[]")
			return
		}
	}

	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheckerMain(args[0], analyzers))
	}

	if len(args) > 0 && (args[0] == "-h" || args[0] == "-help" || args[0] == "--help") {
		usage(analyzers)
		return
	}

	jsonOut := false
	patterns := make([]string, 0, len(args))
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOut = true
			continue
		}
		patterns = append(patterns, a)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := LoadPackages(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acheronlint: %v\n", err)
		os.Exit(1)
	}
	// One shared fact store: packages arrive in dependency order from the
	// loader, so each analysis sees the facts of every loaded dependency.
	facts := NewFactStore()
	var findings []jsonFinding
	exit := 0
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, analyzers, facts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acheronlint: %s: %v\n", pkg.ImportPath, err)
			os.Exit(1)
		}
		for _, d := range diags {
			exit = 2
			pos := pkg.Fset.Position(d.Pos)
			if jsonOut {
				findings = append(findings, jsonFinding{
					File:     pos.Filename,
					Line:     pos.Line,
					Column:   pos.Column,
					Analyzer: d.Analyzer,
					Message:  d.Message,
				})
				continue
			}
			fmt.Printf("%s: [%s] %s\n", pos, d.Analyzer, d.Message)
		}
	}
	if jsonOut {
		// Always emit a (possibly empty) array so CI consumers can parse
		// the clean case without special-casing empty output.
		if findings == nil {
			findings = []jsonFinding{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "acheronlint: encoding findings: %v\n", err)
			os.Exit(1)
		}
	}
	os.Exit(exit)
}

// jsonFinding is the -json exposition of one diagnostic, shaped for CI
// annotation tooling (file/line/column plus the analyzer name kept apart
// from the human message).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func usage(analyzers []*Analyzer) {
	fmt.Println("usage: acheronlint [-json] [packages]")
	fmt.Println()
	fmt.Println("Runs the Acheron engine-specific analyzers over the given package")
	fmt.Println("patterns (default ./...). Also usable as go vet -vettool=<binary>.")
	fmt.Println("-json emits findings as a JSON array (file/line/column/analyzer/")
	fmt.Println("message) for CI annotation tooling.")
	fmt.Println()
	fmt.Println("Suppress a finding with a //lint:ignore <analyzer> <reason> comment")
	fmt.Println("on, or on the line above, the flagged line.")
	fmt.Println()
	fmt.Println("Analyzers:")
	for _, a := range analyzers {
		doc := a.Doc
		if i := strings.IndexByte(doc, '\n'); i >= 0 {
			doc = doc[:i]
		}
		fmt.Printf("  %-14s %s\n", a.Name, doc)
	}
}

// buildFingerprint folds the analyzer names and docs into a stable id so the
// go command's vet cache invalidates when the suite changes shape.
func buildFingerprint(analyzers []*Analyzer) string {
	var h uint64 = 1469598103934665603 // FNV-1a
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	for _, a := range analyzers {
		mix(a.Name)
		mix(a.Doc)
	}
	return fmt.Sprintf("%016x", h)
}
