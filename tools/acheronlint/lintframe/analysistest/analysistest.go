// Package analysistest runs a lintframe.Analyzer over a testdata package and
// checks its diagnostics against `// want` expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// Each flagged line carries a trailing comment of the form
//
//	// want "regexp" ["regexp" ...]
//
// with one quoted regular expression per expected diagnostic on that line.
// Lines without a want comment must produce no diagnostics, which is how the
// "allowed" examples in each analyzer's testdata are asserted.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/tools/acheronlint/lintframe"
)

// Run analyzes testdata/src/<pkgname> beneath dir with the analyzer and
// reports mismatches between diagnostics and want comments as test errors.
func Run(t *testing.T, dir string, a *lintframe.Analyzer, pkgname string) {
	t.Helper()
	pkgdir := filepath.Join(dir, "src", pkgname)
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		t.Fatalf("reading testdata dir: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", pkgdir)
	}

	info := lintframe.NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgname, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking testdata: %v", err)
	}

	pkg := &lintframe.Package{
		ImportPath: pkgname,
		Dir:        pkgdir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := lintframe.RunAnalyzers(pkg, []*lintframe.Analyzer{a}, lintframe.NewFactStore())
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	got := make(map[string][]string) // "file:line" -> messages
	for _, d := range diags {
		p := fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
		got[key] = append(got[key], "["+d.Analyzer+"] "+d.Message)
	}

	for key, patterns := range wants {
		msgs := got[key]
		if len(msgs) != len(patterns) {
			t.Errorf("%s: want %d diagnostic(s) %v, got %d: %v", key, len(patterns), patterns, len(msgs), msgs)
			continue
		}
		remaining := append([]string(nil), msgs...)
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
			}
			idx := -1
			for i, m := range remaining {
				if re.MatchString(m) {
					idx = i
					break
				}
			}
			if idx < 0 {
				t.Errorf("%s: no diagnostic matching %q among %v", key, pat, remaining)
				continue
			}
			remaining = append(remaining[:idx], remaining[idx+1:]...)
		}
	}
	for key, msgs := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s): %v", key, msgs)
		}
	}
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)

// collectWants maps "file:line" to the expected diagnostic patterns
// declared on that line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string][]string {
	t.Helper()
	wants := make(map[string][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				patterns, err := parseWantPatterns(m[1])
				if err != nil {
					p := fset.Position(c.Pos())
					t.Fatalf("%s:%d: %v", p.Filename, p.Line, err)
				}
				p := fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(p.Filename), p.Line)
				wants[key] = append(wants[key], patterns...)
			}
		}
	}
	for _, ps := range wants {
		sort.Strings(ps)
	}
	return wants
}

// parseWantPatterns splits a want payload into its quoted regexp strings.
// Both "double-quoted" and `backquoted` Go string syntax are accepted.
func parseWantPatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for len(s) > 0 {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want pattern must be a quoted string, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		raw := s[:end+2]
		unq, err := strconv.Unquote(raw)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", raw, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+2:])
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty want comment")
	}
	return out, nil
}
