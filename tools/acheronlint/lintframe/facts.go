package lintframe

import (
	"encoding/json"
	"fmt"
	"sort"
)

// PackageFact is one exported, serializable fact about a package: a
// string-keyed summary another package's analysis can consume without
// loading this package's source. The acheronlint facts are deliberately
// name-keyed (canonical "pkg.Type.field" / "pkg.Func" strings) rather than
// types.Object-keyed: that sidesteps the object-resolution machinery the
// x/tools fact system needs and keeps the encoding a flat JSON list.
//
// Examples:
//
//	{Analyzer: "lockorder",  Kind: "acquires",    Object: "manifest.VersionSet.Close", Data: "manifest.VersionSet.commitMu"}
//	{Analyzer: "lockorder",  Kind: "order",       Data: "core.commitPipeline.commitMu<core.DB.mu"}
//	{Analyzer: "atomicmix",  Kind: "atomicfield", Object: "core.commitPipeline.visible"}
//	{Analyzer: "condloop",   Kind: "condmutex",   Object: "core.DB.stallCond", Data: "core.DB.mu"}
type PackageFact struct {
	// Analyzer is the name of the analyzer that exported the fact; facts
	// are only visible to the same analyzer in downstream packages.
	Analyzer string `json:"analyzer"`
	// Object is the canonical name of the declaration the fact describes
	// (may be empty for package-wide facts such as declared lock orders).
	Object string `json:"object,omitempty"`
	// Kind is the analyzer-specific fact kind.
	Kind string `json:"kind"`
	// Data is the analyzer-specific payload.
	Data string `json:"data,omitempty"`
}

// FactStore accumulates package facts across a driver run. The standalone
// driver fills it in dependency order; the unitchecker driver fills it from
// the .vetx files of the unit's dependencies and serializes the current
// package's facts into its own .vetx output.
type FactStore struct {
	byPkg map[string][]PackageFact
	order []string // insertion order, for deterministic iteration
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{byPkg: make(map[string][]PackageFact)}
}

// add records one fact for pkgPath.
func (s *FactStore) add(pkgPath string, f PackageFact) {
	if _, ok := s.byPkg[pkgPath]; !ok {
		s.order = append(s.order, pkgPath)
	}
	s.byPkg[pkgPath] = append(s.byPkg[pkgPath], f)
}

// PackageFacts returns the facts recorded for one package.
func (s *FactStore) PackageFacts(pkgPath string) []PackageFact {
	return s.byPkg[pkgPath]
}

// EncodePackage serializes one package's facts (the .vetx payload).
func (s *FactStore) EncodePackage(pkgPath string) ([]byte, error) {
	facts := append([]PackageFact(nil), s.byPkg[pkgPath]...)
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Data < b.Data
	})
	return json.Marshal(facts)
}

// DecodePackage merges a serialized fact list into the store under pkgPath.
// Empty payloads (packages that exported nothing, or pre-facts vetx stubs)
// decode to no facts.
func (s *FactStore) DecodePackage(pkgPath string, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var facts []PackageFact
	if err := json.Unmarshal(data, &facts); err != nil {
		return fmt.Errorf("decoding facts for %s: %w", pkgPath, err)
	}
	for _, f := range facts {
		s.add(pkgPath, f)
	}
	return nil
}

// ExportFact records a fact about the current package, visible to the same
// analyzer when it later analyzes a package that (transitively) imports
// this one.
func (p *Pass) ExportFact(object, kind, data string) {
	if p.facts == nil || p.Pkg == nil {
		return
	}
	p.facts.add(p.Pkg.Path(), PackageFact{
		Analyzer: p.Analyzer.Name,
		Object:   object,
		Kind:     kind,
		Data:     data,
	})
}

// ImportedFacts returns every fact of the given kind exported by this
// analyzer for packages other than the one under analysis. With the
// standalone driver over ./... the store holds facts for every
// already-processed package (dependencies first); under go vet it holds
// exactly the unit's transitive dependencies.
func (p *Pass) ImportedFacts(kind string) []PackageFact {
	if p.facts == nil {
		return nil
	}
	self := ""
	if p.Pkg != nil {
		self = p.Pkg.Path()
	}
	var out []PackageFact
	for _, pkg := range p.facts.order {
		if pkg == self {
			continue
		}
		for _, f := range p.facts.byPkg[pkg] {
			if f.Analyzer == p.Analyzer.Name && f.Kind == kind {
				out = append(out, f)
			}
		}
	}
	return out
}
