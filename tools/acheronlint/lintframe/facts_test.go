package lintframe

import (
	"reflect"
	"testing"
)

func TestFactStoreRoundTrip(t *testing.T) {
	s := NewFactStore()
	s.add("repro/internal/manifest", PackageFact{
		Analyzer: "lockorder", Kind: "acquires",
		Object: "manifest.VersionSet.Close", Data: "manifest.VersionSet.commitMu",
	})
	s.add("repro/internal/manifest", PackageFact{
		Analyzer: "atomicmix", Kind: "atomicfield",
		Object: "manifest.VersionSet.lastSeqNum",
	})

	payload, err := s.EncodePackage("repro/internal/manifest")
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	dst := NewFactStore()
	if err := dst.DecodePackage("repro/internal/manifest", payload); err != nil {
		t.Fatalf("decode: %v", err)
	}
	got := dst.PackageFacts("repro/internal/manifest")
	if len(got) != 2 {
		t.Fatalf("round-trip kept %d facts, want 2: %v", len(got), got)
	}

	// Facts are visible to the same analyzer in other packages only.
	lockPass := &Pass{Analyzer: &Analyzer{Name: "lockorder"}, facts: dst}
	acq := lockPass.ImportedFacts("acquires")
	want := []PackageFact{{
		Analyzer: "lockorder", Kind: "acquires",
		Object: "manifest.VersionSet.Close", Data: "manifest.VersionSet.commitMu",
	}}
	if !reflect.DeepEqual(acq, want) {
		t.Fatalf("ImportedFacts(acquires) = %v, want %v", acq, want)
	}
	if other := lockPass.ImportedFacts("atomicfield"); other != nil {
		t.Fatalf("lockorder pass sees atomicmix facts: %v", other)
	}
}

func TestFactStoreEmptyPayload(t *testing.T) {
	s := NewFactStore()
	// Pre-facts vetx stubs are zero-length files; they must decode cleanly.
	if err := s.DecodePackage("repro/internal/wal", nil); err != nil {
		t.Fatalf("empty payload: %v", err)
	}
	if facts := s.PackageFacts("repro/internal/wal"); facts != nil {
		t.Fatalf("empty payload produced facts: %v", facts)
	}
}
