// Package lintframe is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary (Analyzer, Pass, Diagnostic)
// plus the drivers needed to run analyzers over this module: a standalone
// driver (`go run ./tools/acheronlint ./...`), a `go vet -vettool`
// unitchecker, and an analysistest-style harness for testdata packages.
//
// The x/tools module is deliberately not vendored: the framework surface the
// acheronlint analyzers need is tiny, and keeping it in-tree means the lint
// gate builds with nothing but the standard library.
package lintframe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// Analyzer describes one static check. It mirrors analysis.Analyzer minus
// facts and requires-graph plumbing, which the acheronlint suite does not
// need.
type Analyzer struct {
	// Name is the analyzer's command-line and //lint:ignore name.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run inspects a package and reports diagnostics through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run function.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *FactStore
}

// Diagnostic is one reported problem.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Analyzer is the reporting analyzer's name, for structured (-json)
	// output; the text renderers embed it in Message instead.
	Analyzer string
}

// Reportf reports a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether pos falls inside a _test.go file. The
// acheronlint analyzers gate production code; tests intentionally exercise
// raw patterns (e.g. bytes.Compare as a comparator under test) and are
// skipped by the analyzers that would otherwise drown in them.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// ignoreDirective is one parsed //lint:ignore comment.
//
// The suppression contract matches staticcheck's: the directive names the
// analyzer (or "*") and must carry a reason. It silences diagnostics of that
// analyzer on the directive's own line (trailing-comment form) and on the
// line immediately below (own-line form).
type ignoreDirective struct {
	file     string
	line     int
	analyzer string
}

var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s+\S`)

// parseIgnores extracts //lint:ignore directives from the files' comments.
func parseIgnores(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, ignoreDirective{file: pos.Filename, line: pos.Line, analyzer: m[1]})
			}
		}
	}
	return out
}

// suppressed reports whether a diagnostic from the named analyzer at pos is
// covered by one of the directives.
func suppressed(dirs []ignoreDirective, name string, pos token.Position) bool {
	for _, d := range dirs {
		if d.file != pos.Filename {
			continue
		}
		if d.analyzer != name && d.analyzer != "*" {
			continue
		}
		if pos.Line == d.line || pos.Line == d.line+1 {
			return true
		}
	}
	return false
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving (non-suppressed) diagnostics, sorted by position. The fact
// store supplies facts exported by dependency packages and receives the
// facts this package exports; a nil store disables facts (analyzers then
// check what they can see in-package).
func RunAnalyzers(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	dirs := parseIgnores(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     facts,
		}
		name := a.Name
		pass.report = func(d Diagnostic) {
			if suppressed(dirs, name, pkg.Fset.Position(d.Pos)) {
				return
			}
			d.Analyzer = name
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sortDiagnostics(pkg.Fset, out)
	return out, nil
}

// ComputeFacts runs the analyzers over the package purely for their fact
// exports, discarding diagnostics. The unitchecker driver uses it for
// VetxOnly (dependency) passes, where the go command wants the package's
// facts but not its findings.
func ComputeFacts(pkg *Package, analyzers []*Analyzer, facts *FactStore) error {
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     facts,
			report:    func(Diagnostic) {},
		}
		if err := a.Run(pass); err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return nil
}

func sortDiagnostics(fset *token.FileSet, ds []Diagnostic) {
	key := func(d Diagnostic) string {
		p := fset.Position(d.Pos)
		return fmt.Sprintf("%s:%09d:%06d:%s:%s", p.Filename, p.Line, p.Column, d.Analyzer, d.Message)
	}
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && key(ds[j]) < key(ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}
