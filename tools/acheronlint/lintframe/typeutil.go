package lintframe

import (
	"go/ast"
	"go/types"
)

// CalleePkgPaths returns the candidate package paths a method call should be
// attributed to: the static type of the receiver expression (after
// dereferencing pointers) and the method's declaring package. Both matter —
// embedded interfaces promote methods into another package (vfs.File.Close
// is declared by io.Closer), so classifying by declaring package alone
// misses exactly the calls a storage engine cares about.
func CalleePkgPaths(info *types.Info, sel *ast.SelectorExpr) []string {
	var out []string
	if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
		t := tv.Type
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
			out = append(out, named.Obj().Pkg().Path())
		}
	}
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		out = append(out, fn.Pkg().Path())
	}
	return out
}
