package lintframe

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// vetConfig mirrors the JSON configuration file the go command hands a
// -vettool binary for each package unit (see x/tools unitchecker for the
// canonical schema; only the fields used here are declared).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string // dependency import path -> its .vetx facts file
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheckerMain runs the analyzers over one vet unit described by cfgPath
// and returns the process exit code.
//
// Facts flow through the go command's .vetx plumbing: every pass — including
// VetxOnly dependency passes, which report nothing — type-checks its unit,
// runs the analyzers, and serializes the facts they export to VetxOutput.
// Dependency facts arrive through PackageVetx, so cross-package invariants
// (lock-order summaries, atomic-field discipline) hold over the full build
// graph, test files' dependencies included.
func unitcheckerMain(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acheronlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "acheronlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	pkg, code := loadVetUnit(&cfg)
	if pkg == nil {
		// Tolerated type-check failures still owe the go command a facts
		// file; an empty one keeps the downstream passes running.
		if code == 0 && cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				fmt.Fprintf(os.Stderr, "acheronlint: writing vetx output: %v\n", err)
				return 1
			}
		}
		return code
	}

	facts := NewFactStore()
	for dep, vetx := range cfg.PackageVetx {
		payload, err := os.ReadFile(vetx)
		if err != nil {
			// A missing or unreadable facts file degrades to fact-less
			// analysis of that dependency, not a hard failure: stale vet
			// caches from a pre-facts binary produce empty files anyway.
			continue
		}
		if err := facts.DecodePackage(dep, payload); err != nil {
			fmt.Fprintf(os.Stderr, "acheronlint: %v\n", err)
			return 1
		}
	}

	var diags []Diagnostic
	if cfg.VetxOnly {
		err = ComputeFacts(pkg, analyzers, facts)
	} else {
		diags, err = RunAnalyzers(pkg, analyzers, facts)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "acheronlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	if cfg.VetxOutput != "" {
		payload, err := facts.EncodePackage(cfg.ImportPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acheronlint: encoding facts: %v\n", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, payload, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "acheronlint: writing vetx output: %v\n", err)
			return 1
		}
	}

	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// loadVetUnit parses and type-checks one vet unit. A nil package means the
// caller should exit with the returned code.
func loadVetUnit(cfg *vetConfig) (*Package, int) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acheronlint: %v\n", err)
			return nil, 1
		}
		files = append(files, f)
	}

	// Resolve imports through the export-data files the go command built.
	lookup := func(path string) (io.ReadCloser, error) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, 0
		}
		fmt.Fprintf(os.Stderr, "acheronlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return nil, 1
	}

	return &Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, 0
}
