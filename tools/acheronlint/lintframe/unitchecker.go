package lintframe

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// vetConfig mirrors the JSON configuration file the go command hands a
// -vettool binary for each package unit (see x/tools unitchecker for the
// canonical schema; only the fields used here are declared).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheckerMain runs the analyzers over one vet unit described by cfgPath
// and returns the process exit code.
func unitcheckerMain(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acheronlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "acheronlint: parsing vet config %s: %v\n", cfgPath, err)
		return 1
	}

	// The go command requires the facts output file to exist even though
	// this suite exports no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "acheronlint: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: nothing to do without facts.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "acheronlint: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	// Resolve imports through the export-data files the go command built.
	lookup := func(path string) (io.ReadCloser, error) {
		if actual, ok := cfg.ImportMap[path]; ok {
			path = actual
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, compiler, lookup)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "acheronlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	diags, err := RunAnalyzers(pkg, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acheronlint: %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
