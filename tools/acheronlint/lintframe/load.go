package lintframe

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Deps       []string
}

// LoadPackages enumerates the packages matching the patterns with
// `go list -json` and type-checks each from source. Only non-test Go files
// are loaded; the analyzers' contract is to gate production code (see
// Pass.IsTestFile).
func LoadPackages(patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	var listed []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if len(p.GoFiles) > 0 {
			listed = append(listed, p)
		}
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })
	listed = topoOrder(listed)

	fset := token.NewFileSet()
	// One source importer shared across packages so each dependency is
	// type-checked at most once.
	imp := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, lp := range listed {
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// topoOrder arranges the loaded packages so every package follows the
// packages it (transitively) depends on. The driver processes them in this
// order, which is what makes dependency facts available by the time a
// dependent package is analyzed. Ties (unrelated packages) keep their
// import-path sort order, so output stays deterministic.
func topoOrder(listed []listedPackage) []listedPackage {
	inSet := make(map[string]int, len(listed)) // import path -> index
	for i, lp := range listed {
		inSet[lp.ImportPath] = i
	}
	out := make([]listedPackage, 0, len(listed))
	visited := make(map[string]bool, len(listed))
	var visit func(i int)
	visit = func(i int) {
		lp := listed[i]
		if visited[lp.ImportPath] {
			return
		}
		visited[lp.ImportPath] = true
		// Deps is transitive and pre-sorted by the go command; restricting
		// to in-set members keeps this a DAG walk over loaded packages.
		for _, dep := range lp.Deps {
			if j, ok := inSet[dep]; ok {
				visit(j)
			}
		}
		out = append(out, lp)
	}
	for i := range listed {
		visit(i)
	}
	return out
}

func checkPackage(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewTypesInfo allocates a types.Info with every map the analyzers consult.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
