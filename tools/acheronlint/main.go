// Command acheronlint is the Acheron engine's static-analysis gate: a
// multichecker bundling eight engine-specific analyzers.
//
//	rawkeycompare  bytes.Compare/Equal where the base comparator must be used
//	lockheld       I/O or blocking channel sends under a held mutex
//	closecheck     discarded Close/Sync/Flush errors on durability paths
//	seqnumlit      integer literals where base.SeqNum/Kind constants belong
//	lockorder      acquisitions inverting the declared lock order, or cycles
//	atomicmix      plain access to atomic fields; copies of atomic-bearing values
//	condloop       Cond.Wait outside a predicate loop; wakeups without the mutex
//	errsentinel    sentinel errors matched with == instead of errors.Is/As
//
// Run standalone over package patterns (add -json for machine-readable
// findings):
//
//	go run ./tools/acheronlint ./...
//	go run ./tools/acheronlint -json ./...
//
// or as a vet tool, which also covers test files' build graph and carries
// cross-package facts (lock-order summaries, atomic-field discipline,
// cond-mutex bindings) through the go command's .vetx plumbing:
//
//	go build -o bin/acheronlint ./tools/acheronlint
//	go vet -vettool=$(pwd)/bin/acheronlint ./...
//
// Suppress an individual finding with a staticcheck-style annotation on, or
// immediately above, the flagged line:
//
//	//lint:ignore <analyzer> <reason>
//
// Declare concurrency invariants for lockorder with:
//
//	// acheron:locks order core.commitPipeline.commitMu < core.DB.mu
//	// acheron:locks acquires manifest.VersionSet.commitMu
package main

import (
	"repro/tools/acheronlint/analyzers/atomicmix"
	"repro/tools/acheronlint/analyzers/closecheck"
	"repro/tools/acheronlint/analyzers/condloop"
	"repro/tools/acheronlint/analyzers/errsentinel"
	"repro/tools/acheronlint/analyzers/lockheld"
	"repro/tools/acheronlint/analyzers/lockorder"
	"repro/tools/acheronlint/analyzers/rawkeycompare"
	"repro/tools/acheronlint/analyzers/seqnumlit"
	"repro/tools/acheronlint/lintframe"
)

func main() {
	lintframe.Main(
		rawkeycompare.Analyzer,
		lockheld.Analyzer,
		closecheck.Analyzer,
		seqnumlit.Analyzer,
		lockorder.Analyzer,
		atomicmix.Analyzer,
		condloop.Analyzer,
		errsentinel.Analyzer,
	)
}
