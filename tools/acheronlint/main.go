// Command acheronlint is the Acheron engine's static-analysis gate: a
// multichecker bundling four engine-specific analyzers.
//
//	rawkeycompare  bytes.Compare/Equal where the base comparator must be used
//	lockheld       I/O or blocking channel sends under a held mutex
//	closecheck     discarded Close/Sync/Flush errors on durability paths
//	seqnumlit      integer literals where base.SeqNum/Kind constants belong
//
// Run standalone over package patterns:
//
//	go run ./tools/acheronlint ./...
//
// or as a vet tool, which also covers test files' build graph:
//
//	go build -o bin/acheronlint ./tools/acheronlint
//	go vet -vettool=$(pwd)/bin/acheronlint ./...
//
// Suppress an individual finding with a staticcheck-style annotation on, or
// immediately above, the flagged line:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"repro/tools/acheronlint/analyzers/closecheck"
	"repro/tools/acheronlint/analyzers/lockheld"
	"repro/tools/acheronlint/analyzers/rawkeycompare"
	"repro/tools/acheronlint/analyzers/seqnumlit"
	"repro/tools/acheronlint/lintframe"
)

func main() {
	lintframe.Main(
		rawkeycompare.Analyzer,
		lockheld.Analyzer,
		closecheck.Analyzer,
		seqnumlit.Analyzer,
	)
}
