// Command acherond serves an Acheron store over TCP: a sharded engine
// behind the length-prefixed binary protocol of internal/wire, one
// goroutine per connection, every request bounded by an op deadline. The
// interactive shell (cmd/acheron -connect) and the C7 benchmark speak to
// it through internal/client.
//
// Usage:
//
//	acherond -dir /var/lib/acheron -shards 4 [-addr 127.0.0.1:4600]
//	         [-dpt 1h] [-policy leveled|size-tiered|lazy-leveling] [-kiwi]
//	         [-op-timeout 2s] [-write-rate 100000] [-metrics-addr 127.0.0.1:0]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/admission"
	"repro/internal/base"
	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4600", "listen address")
	dir := flag.String("dir", "acheron-data", "store directory")
	shards := flag.Int("shards", 0, "shard count for a new store (0: adopt existing, else 1)")
	dpt := flag.Duration("dpt", 0, "delete persistence threshold (0 disables FADE)")
	policyName := flag.String("policy", "", "compaction policy: leveled, size-tiered, or lazy-leveling")
	kiwi := flag.Bool("kiwi", false, "use the KiWi key-weaving layout (4 pages/tile)")
	eager := flag.Bool("eager", false, "apply secondary range deletes eagerly")
	opTimeout := flag.Duration("op-timeout", 0, "per-request deadline; stalled or queued ops fail instead of blocking (0 disables)")
	writeRate := flag.Float64("write-rate", 0, "admitted write rate in ops/s PER SHARD via token-bucket admission control (0 disables)")
	syncWrites := flag.Bool("sync", false, "fsync the WAL before acknowledging every commit")
	metricsAddr := flag.String("metrics-addr", "", "HTTP address for shard-labeled /metrics and /vars (empty disables)")
	flag.Parse()

	opts := core.Options{
		Shards:     *shards,
		SyncWrites: *syncWrites,
		DeleteKeyFunc: func(v []byte) base.DeleteKey {
			if len(v) < 8 {
				return 0
			}
			return binary.BigEndian.Uint64(v)
		},
		EagerRangeDeletes: *eager,
		Compaction: compaction.Options{
			Picker: compaction.PickMinOverlap,
			DPT:    base.Duration(*dpt),
		},
	}
	if *dpt > 0 {
		opts.Compaction.Picker = compaction.PickFADE
	}
	if *policyName != "" {
		kind, ok := compaction.ParsePolicyKind(*policyName)
		if !ok {
			fmt.Fprintf(os.Stderr, "-policy: unknown policy %q (want leveled, size-tiered, or lazy-leveling)\n", *policyName)
			os.Exit(1)
		}
		opts.Compaction.Policy = kind
	}
	if *kiwi {
		opts.PagesPerTile = 4
	}
	if *writeRate > 0 {
		opts.Admission = admission.Config{WriteRate: *writeRate}
	}

	r, err := shard.Open(*dir, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "open: %v\n", err)
		os.Exit(1)
	}

	srv := server.New(r, server.Config{OpTimeout: *opTimeout})
	bound, err := srv.Start(*addr)
	if err != nil {
		_ = r.Close()
		fmt.Fprintf(os.Stderr, "listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("acherond serving %q on %s — %d shards, dpt=%v, policy=%s\n",
		*dir, bound, r.NumShards(), *dpt, r.PolicyName())

	if *metricsAddr != "" {
		mbound, _, err := r.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics: %v\n", err)
		} else {
			fmt.Printf("metrics on http://%s/{metrics,vars}\n", mbound)
		}
	}

	// Graceful shutdown: stop accepting and drain connections, then close
	// the store (flushing memtables and syncing the WAL on every shard).
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down")
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "server close: %v\n", err)
	}
	if err := r.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "store close: %v\n", err)
		os.Exit(1)
	}
}
