// Command acheron-bench regenerates the paper's evaluation tables and
// figures (E1..E8, see DESIGN.md) against the in-memory filesystem with a
// deterministic logical clock.
//
// Usage:
//
//	acheron-bench [-exp E1,E3] [-scale small|default|large]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (E1..E8) or 'all'")
	scaleFlag := flag.String("scale", "default", "experiment scale: small, default, large")
	metricsDir := flag.String("metrics", "", "directory for per-experiment Prometheus metric snapshots (empty disables)")
	jsonPath := flag.String("json", "", "file for a JSON run summary: result tables plus per-config commit/WAL metric snapshots (empty disables)")
	flag.Parse()

	var sc harness.Scale
	switch *scaleFlag {
	case "small":
		sc = harness.SmallScale()
	case "default":
		sc = harness.DefaultScale()
	case "large":
		sc = harness.DefaultScale()
		sc.KeySpace *= 4
		sc.Ops *= 4
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	experiments := map[string]func(harness.Scale) (*harness.Table, error){
		"E1": harness.E1DeletePersistence,
		"E2": harness.E2SpaceAmp,
		"E3": harness.E3WriteAmp,
		"E4": harness.E4ReadThroughput,
		"E5": harness.E5KiWiRangeDelete,
		"E6": harness.E6TombstoneCount,
		"E7": harness.E7StrategyMatrix,
		"E8": harness.E8Ingestion,
		"A1": harness.A1TTLSplit,
		"A2": harness.A2BloomBits,
		"A3": harness.A3FADETieBreak,
		"C1": harness.C1MaintenanceConcurrency,
		"C2": harness.C2CommitPipeline,
		"C4": harness.C4IteratorThroughput,
		"C5": harness.C5PolicyWorkloadSweep,
		"C6": harness.C6Overload,
		"C7": harness.C7ServeSaturation,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "A1", "A2", "A3", "C1", "C2", "C4", "C5", "C6", "C7"}

	var ids []string
	if *expFlag == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if _, ok := experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	// Metric sinks: every engine an experiment opens hands its final state
	// to each installed sink as it closes, so per-variant counters survive
	// the run. -metrics dumps Prometheus text into
	// <dir>/<exp>-<config>[-n].prom; -json collects the write-path metrics
	// that track the commit pipeline's perf trajectory across PRs.
	var currentExp string
	var sinks []func(string, *core.DB)
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "metrics dir: %v\n", err)
			os.Exit(1)
		}
		seen := make(map[string]int)
		sinks = append(sinks, func(name string, db *core.DB) {
			stem := fmt.Sprintf("%s-%s", strings.ToLower(currentExp), name)
			seen[stem]++
			if n := seen[stem]; n > 1 {
				stem = fmt.Sprintf("%s-%d", stem, n)
			}
			var sb strings.Builder
			if _, err := db.Registry().WriteTo(&sb); err != nil {
				fmt.Fprintf(os.Stderr, "metrics snapshot %s: %v\n", stem, err)
				return
			}
			path := filepath.Join(*metricsDir, stem+".prom")
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "metrics snapshot %s: %v\n", path, err)
			}
		})
	}
	jsonMetrics := map[string]map[string]float64{}
	if *jsonPath != "" {
		seen := make(map[string]int)
		sinks = append(sinks, func(name string, db *core.DB) {
			key := fmt.Sprintf("%s-%s", strings.ToLower(currentExp), name)
			seen[key]++
			if n := seen[key]; n > 1 {
				key = fmt.Sprintf("%s-%d", key, n)
			}
			st := db.Stats()
			m := map[string]float64{
				"wal_appends":        float64(st.WALAppends.Get()),
				"wal_syncs":          float64(st.WALSyncs.Get()),
				"wal_bytes":          float64(st.WALBytes.Get()),
				"commits_per_sync":   st.CommitsPerSync(),
				"p99_group_size":     float64(st.WALGroupSize.Quantile(0.99)),
				"p99_wal_sync_ns":    float64(st.WALSyncLatency.Quantile(0.99)),
				"p99_put_ns":         float64(st.PutLatency.Quantile(0.99)),
				"p99_batch_ns":       float64(st.BatchLatency.Quantile(0.99)),
				"write_stalls":       float64(st.WriteStalls.Get()),
				"write_stall_ns":     float64(st.WriteStallNanos.Get()),
				"bytes_ingested":     float64(st.BytesIngested.Get()),
				"write_amp":          st.WriteAmplification(),
				"flushes":            float64(st.Flushes.Get()),
				"peak_flush_queue":   float64(st.FlushQueueDepth.Peak()),
				"background_errors":  float64(st.BackgroundErrors.Get()),
				"stall_timeouts":     float64(st.StallTimeouts.Get()),
				"commit_cancels":     float64(st.CommitCancels.Get()),
				"iter_reseeks":       float64(st.IterReseeks.Get()),
				"view_builds":        float64(st.IterViewBuilds.Get()),
				"view_hits":          float64(st.IterViewHits.Get()),
				"view_invalidations": float64(st.IterViewInvalidations.Get()),
				"prefix_bloom_skips": float64(st.PrefixBloomSkips.Get()),
				"scan_tables_opened": float64(st.IterTablesOpened.Get()),
				"p99_scan_step_ns":   float64(st.IterScanLatency.Quantile(0.99)),
			}
			if ac := db.Admission(); ac != nil {
				wm := ac.ClassMetrics(admission.ClassWrite)
				m["admitted_writes"] = float64(wm.Admitted.Get())
				m["rejected_writes"] = float64(wm.Rejected.Get())
				m["shed_writes"] = float64(wm.Shed.Get())
				m["p99_admission_wait_ns"] = float64(wm.Wait.Quantile(0.99))
			}
			jsonMetrics[key] = m
		})
	}
	if len(sinks) > 0 {
		harness.SetMetricsSink(func(name string, db *core.DB) {
			for _, sink := range sinks {
				sink(name, db)
			}
		})
	}

	var tables []*harness.Table
	for _, id := range ids {
		currentExp = id
		tbl, err := experiments[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
		tables = append(tables, tbl)
	}

	if *jsonPath != "" {
		doc := struct {
			Scale       string                        `json:"scale"`
			Experiments []string                      `json:"experiments"`
			Tables      []*harness.Table              `json:"tables"`
			Metrics     map[string]map[string]float64 `json:"metrics"`
			Note        string                        `json:"note"`
		}{
			Scale:       *scaleFlag,
			Experiments: ids,
			Tables:      tables,
			Metrics:     jsonMetrics,
			Note:        "wall-clock experiments (C1, C2) vary run to run; deterministic experiments (E1..E8) are exactly reproducible at a given scale",
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "json summary: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "json summary %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
	}
}
