// Command acheron-bench regenerates the paper's evaluation tables and
// figures (E1..E8, see DESIGN.md) against the in-memory filesystem with a
// deterministic logical clock.
//
// Usage:
//
//	acheron-bench [-exp E1,E3] [-scale small|default|large]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/harness"
)

func main() {
	expFlag := flag.String("exp", "all", "comma-separated experiment ids (E1..E8) or 'all'")
	scaleFlag := flag.String("scale", "default", "experiment scale: small, default, large")
	metricsDir := flag.String("metrics", "", "directory for per-experiment Prometheus metric snapshots (empty disables)")
	flag.Parse()

	var sc harness.Scale
	switch *scaleFlag {
	case "small":
		sc = harness.SmallScale()
	case "default":
		sc = harness.DefaultScale()
	case "large":
		sc = harness.DefaultScale()
		sc.KeySpace *= 4
		sc.Ops *= 4
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	experiments := map[string]func(harness.Scale) (*harness.Table, error){
		"E1": harness.E1DeletePersistence,
		"E2": harness.E2SpaceAmp,
		"E3": harness.E3WriteAmp,
		"E4": harness.E4ReadThroughput,
		"E5": harness.E5KiWiRangeDelete,
		"E6": harness.E6TombstoneCount,
		"E7": harness.E7StrategyMatrix,
		"E8": harness.E8Ingestion,
		"A1": harness.A1TTLSplit,
		"A2": harness.A2BloomBits,
		"A3": harness.A3FADETieBreak,
		"C1": harness.C1MaintenanceConcurrency,
	}
	order := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "A1", "A2", "A3", "C1"}

	var ids []string
	if *expFlag == "all" {
		ids = order
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.ToUpper(strings.TrimSpace(id))
			if _, ok := experiments[id]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}

	// With -metrics, every engine an experiment opens dumps its final
	// metric state (Prometheus text) into <dir>/<exp>-<config>[-n].prom as
	// it closes, so per-variant counters survive the run.
	var currentExp string
	if *metricsDir != "" {
		if err := os.MkdirAll(*metricsDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "metrics dir: %v\n", err)
			os.Exit(1)
		}
		seen := make(map[string]int)
		harness.SetMetricsSink(func(name string, db *core.DB) {
			stem := fmt.Sprintf("%s-%s", strings.ToLower(currentExp), name)
			seen[stem]++
			if n := seen[stem]; n > 1 {
				stem = fmt.Sprintf("%s-%d", stem, n)
			}
			var sb strings.Builder
			if _, err := db.Registry().WriteTo(&sb); err != nil {
				fmt.Fprintf(os.Stderr, "metrics snapshot %s: %v\n", stem, err)
				return
			}
			path := filepath.Join(*metricsDir, stem+".prom")
			if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "metrics snapshot %s: %v\n", path, err)
			}
		})
	}

	for _, id := range ids {
		currentExp = id
		tbl, err := experiments[id](sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", id, err)
			os.Exit(1)
		}
		tbl.Fprint(os.Stdout)
	}
}
