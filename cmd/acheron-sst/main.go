// Command acheron-sst inspects Acheron sstables, like RocksDB's sst_dump:
// properties, the KiWi tile/page layout (with per-page delete-key spans),
// range tombstones, and full entry dumps, plus a checksum scrub.
//
// Usage:
//
//	acheron-sst props  <file.sst>
//	acheron-sst layout <file.sst>
//	acheron-sst dump   <file.sst> [-limit n]
//	acheron-sst verify <file.sst>
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/sstable"
	"repro/internal/vfs"
)

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	cmd, path := os.Args[1], os.Args[2]
	fs := vfs.OSFS{}
	f, err := fs.Open(path)
	if err != nil {
		fatal("open: %v", err)
	}
	r, err := sstable.Open(f)
	if err != nil {
		fatal("not an acheron sstable: %v", err)
	}
	// Read-only inspection: a close error at process exit changes nothing.
	defer vfs.BestEffortClose(r)

	switch cmd {
	case "props":
		props(r)
	case "layout":
		layout(r)
	case "dump":
		fset := flag.NewFlagSet("dump", flag.ExitOnError)
		limit := fset.Int("limit", 0, "max entries to dump (0 = all)")
		fset.Parse(os.Args[3:])
		dump(r, *limit)
	case "verify":
		verify(r)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: acheron-sst {props|layout|dump|verify} <file.sst> [flags]")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

func props(r *sstable.Reader) {
	p := r.Props()
	fmt.Printf("entries:            %d\n", p.NumEntries)
	fmt.Printf("point tombstones:   %d\n", p.NumDeletes)
	fmt.Printf("range tombstones:   %d\n", p.NumRangeDeletes)
	fmt.Printf("raw key bytes:      %d\n", p.RawKeyBytes)
	fmt.Printf("raw value bytes:    %d\n", p.RawValueBytes)
	fmt.Printf("tiles / pages:      %d / %d\n", p.NumTiles, p.NumPages)
	fmt.Printf("pages dropped:      %d (by the compaction that wrote this file)\n", p.DroppedPages)
	fmt.Printf("seqnum span:        [%d, %d]\n", p.MinSeqNum, p.MaxSeqNum)
	fmt.Printf("multi-version keys: %v\n", p.HasDuplicates)
	if p.NumDeletes+p.NumRangeDeletes > 0 {
		fmt.Printf("oldest tombstone:   %d\n", p.OldestTombstone)
	}
	if p.NumEntries > p.NumDeletes {
		fmt.Printf("delete-key span:    [%d, %d]\n", p.DeleteKeyMin, p.DeleteKeyMax)
	}
	if p.PrefixBloomMaxLen > 0 {
		fmt.Printf("prefix bloom:       prefixes up to %d bytes (%d filter bytes)\n",
			p.PrefixBloomMaxLen, p.PrefixFilter.Length)
	}
}

func layout(r *sstable.Reader) {
	fmt.Printf("%d tiles, %d pages\n", r.NumTiles(), r.NumPages())
	fmt.Println("page  dk_min               dk_max               max_seq     tombstones")
	for i := 0; i < r.NumPages(); i++ {
		p := r.Page(i)
		dkMin, dkMax := fmt.Sprintf("%d", p.DKMin), fmt.Sprintf("%d", p.DKMax)
		if p.DKMin > p.DKMax {
			dkMin, dkMax = "-", "-"
		}
		fmt.Printf("%-5d %-20s %-20s %-11d %v\n", i, dkMin, dkMax, p.MaxSeq, p.HasTombstones)
	}
	if rts := r.RangeTombstones(); len(rts) > 0 {
		fmt.Println("\nrange tombstones:")
		for _, rt := range rts {
			fmt.Printf("  dk [%d, %d) seq %d created %d\n", rt.Lo, rt.Hi, rt.Seq, rt.CreatedAt)
		}
	}
}

func dump(r *sstable.Reader, limit int) {
	it := r.NewIter()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		k := it.Key()
		fmt.Printf("%q#%d,%s = %d bytes\n", k.UserKey, k.SeqNum(), k.Kind(), len(it.Value()))
		n++
		if limit > 0 && n >= limit {
			fmt.Printf("... (stopped at limit)\n")
			break
		}
	}
	if err := it.Error(); err != nil {
		fatal("iteration failed: %v", err)
	}
	fmt.Printf("%d entries\n", n)
}

func verify(r *sstable.Reader) {
	// A full iteration reads and checksums every data block.
	it := r.NewIter()
	n := 0
	for ok := it.First(); ok; ok = it.Next() {
		n++
	}
	if err := it.Error(); err != nil {
		fatal("CORRUPT: %v", err)
	}
	p := r.Props()
	if uint64(n) != p.NumEntries {
		fatal("CORRUPT: iterated %d entries, properties claim %d", n, p.NumEntries)
	}
	fmt.Printf("ok: %d entries, %d pages, all checksums valid\n", n, r.NumPages())
}
