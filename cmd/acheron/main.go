// Command acheron is an interactive shell over an Acheron store — the
// demonstration component of the paper. It exposes puts, gets, deletes
// (point and secondary-range), scans, manual maintenance stepping, and live
// inspection of the tree shape, tombstone population and persistence
// statistics.
//
// Usage:
//
//	acheron -dir /tmp/store [-dpt 1h] [-policy leveled|size-tiered|lazy-leveling] [-kiwi]
//	        [-timeout 50ms] [-write-rate 10000]
//	acheron -connect 127.0.0.1:4600
//
// With -connect the shell speaks the wire protocol to a running acherond
// instead of embedding a store. Then type "help" at the prompt.
package main

import (
	"bufio"
	"context"
	"encoding/binary"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/admission"
	"repro/internal/base"
	"repro/internal/client"
	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/event"
)

func main() {
	connect := flag.String("connect", "", "acherond address; speak the wire protocol instead of embedding a store")
	dir := flag.String("dir", "acheron-data", "store directory")
	dpt := flag.Duration("dpt", 0, "delete persistence threshold (0 disables FADE)")
	policyName := flag.String("policy", "", "compaction policy: leveled, size-tiered, or lazy-leveling (overrides -shape)")
	shape := flag.String("shape", "leveling", "deprecated compaction shape: leveling or tiering (use -policy)")
	kiwi := flag.Bool("kiwi", false, "use the KiWi key-weaving layout (4 pages/tile)")
	eager := flag.Bool("eager", false, "apply secondary range deletes eagerly")
	flag.DurationVar(&opTimeout, "timeout", 0, "per-operation deadline; stalled or queued ops fail instead of blocking (0 disables)")
	writeRate := flag.Float64("write-rate", 0, "admitted write rate in ops/s via token-bucket admission control (0 disables)")
	flag.Parse()

	if *connect != "" {
		remoteShell(*connect)
		return
	}

	opts := core.Options{
		DeleteKeyFunc: func(v []byte) base.DeleteKey {
			if len(v) < 8 {
				return 0
			}
			return binary.BigEndian.Uint64(v)
		},
		EagerRangeDeletes: *eager,
		Compaction: compaction.Options{
			Picker: compaction.PickMinOverlap,
			DPT:    base.Duration(*dpt),
		},
	}
	if *dpt > 0 {
		opts.Compaction.Picker = compaction.PickFADE
	}
	if *shape == "tiering" {
		opts.Compaction.Shape = compaction.Tiering
	}
	if *policyName != "" {
		kind, ok := compaction.ParsePolicyKind(*policyName)
		if !ok {
			fmt.Fprintf(os.Stderr, "-policy: unknown policy %q (want leveled, size-tiered, or lazy-leveling)\n", *policyName)
			os.Exit(1)
		}
		opts.Compaction.Policy = kind
	}
	if *kiwi {
		opts.PagesPerTile = 4
	}
	if *writeRate > 0 {
		opts.Admission = admission.Config{WriteRate: *writeRate}
	}

	db, err := core.Open(*dir, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "open: %v\n", err)
		os.Exit(1)
	}
	defer db.Close()

	fmt.Printf("acheron shell — store %q, dpt=%v, policy=%s, kiwi=%v\n", *dir, *dpt, db.PolicyName(), *kiwi)
	fmt.Println(`type "help" for commands`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if err := execute(db, fields); err != nil {
			if err == errQuit {
				return
			}
			fmt.Printf("error: %v\n", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

// remoteShell runs the command loop against a live acherond over the wire
// protocol. The remote command set is the served surface: point ops, range
// deletes, scans, and server stats.
func remoteShell(addr string) {
	c, err := client.Dial(addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "connect: %v\n", err)
		os.Exit(1)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		fmt.Fprintf(os.Stderr, "ping: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("acheron shell — connected to acherond at %s\n", addr)
	fmt.Println(`type "help" for commands`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if err := executeRemote(c, fields); err != nil {
			if err == errQuit {
				return
			}
			fmt.Printf("error: %v\n", err)
		}
	}
}

func executeRemote(c *client.Client, fields []string) error {
	switch fields[0] {
	case "help":
		fmt.Print(`commands (remote):
  put <key> <value>          insert/update (value's delete key = now)
  get <key>                  point lookup
  del <key>                  point delete
  rangedel <loUnix> <hiUnix> secondary range delete on [lo, hi) timestamps
  scan [prefix] [limit]      iterate live keys
  stats                      server stats (JSON)
  ping                       round-trip check
  quit
`)
	case "put":
		if len(fields) != 3 {
			return fmt.Errorf("usage: put <key> <value>")
		}
		v := make([]byte, 8+len(fields[2]))
		binary.BigEndian.PutUint64(v, uint64(time.Now().UnixNano()))
		copy(v[8:], fields[2])
		return c.Put([]byte(fields[1]), v)
	case "get":
		if len(fields) != 2 {
			return fmt.Errorf("usage: get <key>")
		}
		v, err := c.Get([]byte(fields[1]))
		if err != nil {
			return err
		}
		if len(v) >= 8 {
			ts := time.Unix(0, int64(binary.BigEndian.Uint64(v)))
			fmt.Printf("%s (written %s)\n", v[8:], ts.Format(time.RFC3339))
		} else {
			fmt.Printf("%s\n", v)
		}
	case "del":
		if len(fields) != 2 {
			return fmt.Errorf("usage: del <key>")
		}
		return c.Delete([]byte(fields[1]))
	case "rangedel":
		if len(fields) != 3 {
			return fmt.Errorf("usage: rangedel <loUnixNano> <hiUnixNano>")
		}
		lo, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		hi, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return err
		}
		return c.DeleteSecondaryRange(lo, hi)
	case "scan":
		prefix := ""
		limit := 20
		if len(fields) > 1 {
			prefix = fields[1]
		}
		if len(fields) > 2 {
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return err
			}
			limit = n
		}
		kvs, err := c.Scan([]byte(prefix), nil, limit)
		if err != nil {
			return err
		}
		n := 0
		for _, kv := range kvs {
			if !strings.HasPrefix(string(kv.Key), prefix) {
				break
			}
			val := kv.Value
			if len(val) >= 8 {
				val = val[8:]
			}
			fmt.Printf("%s = %s\n", kv.Key, val)
			n++
		}
		fmt.Printf("(%d keys)\n", n)
	case "stats":
		body, err := c.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", body)
	case "ping":
		start := time.Now()
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Printf("pong (%v)\n", time.Since(start).Round(time.Microsecond))
	case "quit", "exit":
		return errQuit
	default:
		return fmt.Errorf("unknown command %q (try help)", fields[0])
	}
	return nil
}

// opTimeout is the -timeout flag: the deadline attached to every shell
// operation. Under a saturated stall or a drained admission bucket the
// command returns a wrapped context.DeadlineExceeded or ErrOverloaded
// instead of hanging the prompt.
var opTimeout time.Duration

// opCtx returns the context for one shell operation and its cancel func.
func opCtx() (context.Context, context.CancelFunc) {
	if opTimeout <= 0 {
		return context.Background(), func() {}
	}
	return context.WithTimeout(context.Background(), opTimeout)
}

// watchEvents tails the trace ring for d, polling EventsSince with the last
// seen sequence number so nothing is printed twice and nothing buffered is
// missed (short of ring eviction under extreme rates).
func watchEvents(db *core.DB, d time.Duration) error {
	deadline := time.Now().Add(d)
	next := db.TraceEventsTotal() // start at "now": only new events
	fmt.Printf("watching events for %v...\n", d)
	for time.Now().Before(deadline) {
		evs := db.EventsSince(next, event.DefaultRingSize)
		for _, e := range evs {
			fmt.Println(e)
			next = e.Seq + 1
		}
		time.Sleep(200 * time.Millisecond)
	}
	return nil
}

func execute(db *core.DB, fields []string) error {
	switch fields[0] {
	case "help":
		fmt.Print(`commands:
  put <key> <value>          insert/update (value's delete key = now)
  get <key>                  point lookup
  del <key>                  point delete
  rangedel <loUnix> <hiUnix> secondary range delete on [lo, hi) timestamps
  scan [prefix] [limit]      iterate live keys
  stats                      engine statistics
  levels                     per-level tree shape
  metrics                    Prometheus text exposition of every metric
  vars                       all metrics as one JSON document
  events [n]                 last n buffered trace events (default 20)
  jobs                       recently completed maintenance jobs
  admission                  per-class admission-control counters
  watch [seconds]            tail trace events live (default 5s)
  serve [addr]               expose /metrics /vars /events /jobs over HTTP
  flush                      flush memtables
  compact                    compact everything
  quit
`)
	case "put":
		if len(fields) != 3 {
			return fmt.Errorf("usage: put <key> <value>")
		}
		// Prefix the value with its delete key: the current time.
		v := make([]byte, 8+len(fields[2]))
		binary.BigEndian.PutUint64(v, uint64(time.Now().UnixNano()))
		copy(v[8:], fields[2])
		ctx, cancel := opCtx()
		defer cancel()
		return db.PutCtx(ctx, []byte(fields[1]), v)
	case "get":
		if len(fields) != 2 {
			return fmt.Errorf("usage: get <key>")
		}
		ctx, cancel := opCtx()
		defer cancel()
		v, err := db.GetCtx(ctx, []byte(fields[1]))
		if err != nil {
			return err
		}
		if len(v) >= 8 {
			ts := time.Unix(0, int64(binary.BigEndian.Uint64(v)))
			fmt.Printf("%s (written %s)\n", v[8:], ts.Format(time.RFC3339))
		} else {
			fmt.Printf("%s\n", v)
		}
	case "del":
		if len(fields) != 2 {
			return fmt.Errorf("usage: del <key>")
		}
		ctx, cancel := opCtx()
		defer cancel()
		return db.DeleteCtx(ctx, []byte(fields[1]))
	case "rangedel":
		if len(fields) != 3 {
			return fmt.Errorf("usage: rangedel <loUnixNano> <hiUnixNano>")
		}
		lo, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return err
		}
		hi, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return err
		}
		ctx, cancel := opCtx()
		defer cancel()
		return db.DeleteSecondaryRangeCtx(ctx, lo, hi)
	case "scan":
		prefix := ""
		limit := 20
		if len(fields) > 1 {
			prefix = fields[1]
		}
		if len(fields) > 2 {
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return err
			}
			limit = n
		}
		it, err := db.NewIter(core.IterOptions{})
		if err != nil {
			return err
		}
		defer it.Close()
		n := 0
		for ok := it.SeekGE([]byte(prefix)); ok && n < limit; ok = it.Next() {
			if !strings.HasPrefix(string(it.Key()), prefix) {
				break
			}
			val := it.Value()
			if len(val) >= 8 {
				val = val[8:]
			}
			fmt.Printf("%s = %s\n", it.Key(), val)
			n++
		}
		fmt.Printf("(%d keys)\n", n)
		return it.Error()
	case "stats":
		fmt.Println(db.Stats())
	case "levels":
		levels := db.Levels()
		fmt.Println("level  runs  files  bytes      tombstones")
		for l, info := range levels {
			if info.Files == 0 {
				continue
			}
			fmt.Printf("L%-5d %-5d %-6d %-10d %d\n", l, info.Runs, info.Files, info.Bytes, info.Tombstones)
		}
	case "metrics":
		_, err := db.Registry().WriteTo(os.Stdout)
		return err
	case "vars":
		return db.Registry().WriteJSON(os.Stdout)
	case "events":
		n := 20
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return err
			}
			n = v
		}
		evs := db.RecentEvents(n)
		for _, e := range evs {
			fmt.Println(e)
		}
		fmt.Printf("(%d events, %d emitted total)\n", len(evs), db.TraceEventsTotal())
	case "jobs":
		jobs := db.RecentMaintJobs()
		for _, j := range jobs {
			kind := j.Kind.String()
			if j.Kind == core.JobCompact {
				kind += "/" + j.Trigger.String()
				if j.Policy != "" {
					kind += " " + j.Policy
				}
			}
			status := "ok"
			if j.Err != nil {
				status = "err=" + j.Err.Error()
			}
			fmt.Printf("#%-4d %-22s L%d->L%d in=%d out=%d dur=%v %s\n",
				j.ID, kind, j.StartLevel, j.OutputLevel, j.BytesIn, j.BytesOut,
				j.Finished.Sub(j.Started).Round(time.Microsecond), status)
		}
		fmt.Printf("(%d jobs)\n", len(jobs))
	case "watch":
		secs := 5
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return err
			}
			secs = v
		}
		return watchEvents(db, time.Duration(secs)*time.Second)
	case "serve":
		addr := "127.0.0.1:0"
		if len(fields) > 1 {
			addr = fields[1]
		}
		bound, _, err := db.ServeMetrics(addr)
		if err != nil {
			return err
		}
		fmt.Printf("serving http://%s/{metrics,vars,events,jobs} until the shell exits\n", bound)
	case "admission":
		ac := db.Admission()
		if ac == nil {
			fmt.Println("admission control disabled (start with -write-rate)")
			return nil
		}
		fmt.Println("class  admitted  rejected  shed  p50_wait   p99_wait")
		for _, cl := range []admission.Class{admission.ClassRead, admission.ClassWrite} {
			cm := ac.ClassMetrics(cl)
			fmt.Printf("%-6s %-9d %-9d %-5d %-10v %v\n", cl,
				cm.Admitted.Get(), cm.Rejected.Get(), cm.Shed.Get(),
				time.Duration(cm.Wait.Quantile(0.5)), time.Duration(cm.Wait.Quantile(0.99)))
		}
	case "flush":
		return db.Flush()
	case "compact":
		ctx, cancel := opCtx()
		defer cancel()
		return db.CompactAllCtx(ctx)
	case "quit", "exit":
		return errQuit
	default:
		return fmt.Errorf("unknown command %q (try help)", fields[0])
	}
	return nil
}
