// Command acheron-workload generates reproducible workload traces and
// replays them against an Acheron store, reporting throughput and engine
// statistics — the glue for benchmarking the engine against recorded or
// synthetic op streams.
//
// Usage:
//
//	acheron-workload gen -out trace.bin -ops 100000 [-keys 50000]
//	    [-dist uniform|zipfian|latest|sequential]
//	    [-updates 0.2 -deletes 0.1 -lookups 0.2 -scans 0.01]
//	    [-rangedeletes 0.001 -window 10000] [-oldest-first]
//	acheron-workload replay -in trace.bin -dir /tmp/store [-dpt 1h] [-kiwi]
//	acheron-workload stats -in trace.bin
package main

import (
	"bufio"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/base"
	"repro/internal/compaction"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		gen(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: acheron-workload {gen|replay|stats} [flags]")
	os.Exit(2)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// Trace wire format: per op
//
//	kind byte | keyLen uvarint | key | valLen uvarint | val |
//	scanLen uvarint | lo uvarint | hi uvarint
func writeOp(w *bufio.Writer, op workload.Op) error {
	var buf []byte
	buf = append(buf, byte(op.Kind))
	buf = binary.AppendUvarint(buf, uint64(len(op.Key)))
	buf = append(buf, op.Key...)
	buf = binary.AppendUvarint(buf, uint64(len(op.Value)))
	buf = append(buf, op.Value...)
	buf = binary.AppendUvarint(buf, uint64(op.ScanLen))
	buf = binary.AppendUvarint(buf, op.Lo)
	buf = binary.AppendUvarint(buf, op.Hi)
	_, err := w.Write(buf)
	return err
}

func readOp(r *bufio.Reader) (workload.Op, error) {
	var op workload.Op
	kind, err := r.ReadByte()
	if err != nil {
		return op, err
	}
	op.Kind = workload.OpKind(kind)
	readBytes := func() ([]byte, error) {
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		b := make([]byte, n)
		_, err = io.ReadFull(r, b)
		return b, err
	}
	if op.Key, err = readBytes(); err != nil {
		return op, err
	}
	if op.Value, err = readBytes(); err != nil {
		return op, err
	}
	sl, err := binary.ReadUvarint(r)
	if err != nil {
		return op, err
	}
	op.ScanLen = int(sl)
	if op.Lo, err = binary.ReadUvarint(r); err != nil {
		return op, err
	}
	if op.Hi, err = binary.ReadUvarint(r); err != nil {
		return op, err
	}
	return op, nil
}

func gen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "trace.bin", "output trace file")
	ops := fs.Int("ops", 100_000, "number of operations")
	keys := fs.Int("keys", 50_000, "key space size")
	valueLen := fs.Int("valuelen", 128, "value length")
	dist := fs.String("dist", "uniform", "distribution: uniform|zipfian|latest|sequential")
	updates := fs.Float64("updates", 0.2, "update fraction")
	deletes := fs.Float64("deletes", 0.1, "delete fraction")
	lookups := fs.Float64("lookups", 0.2, "lookup fraction")
	scans := fs.Float64("scans", 0, "scan fraction")
	rangeDels := fs.Float64("rangedeletes", 0, "secondary range delete fraction")
	window := fs.Uint64("window", 0, "rolling window size for range deletes")
	oldestFirst := fs.Bool("oldest-first", false, "point deletes target oldest keys (FIFO)")
	seed := fs.Uint64("seed", 42, "random seed")
	fs.Parse(args)

	dists := map[string]workload.Dist{
		"uniform": workload.Uniform, "zipfian": workload.Zipfian,
		"latest": workload.Latest, "sequential": workload.Sequential,
	}
	d, ok := dists[*dist]
	if !ok {
		fatal("unknown distribution %q", *dist)
	}
	g := workload.New(workload.Spec{
		Seed: *seed, KeySpace: *keys, ValueLen: *valueLen, Dist: d,
		Mix: workload.Mix{
			Updates: *updates, Deletes: *deletes, Lookups: *lookups,
			Scans: *scans, RangeDelete: *rangeDels,
		},
		WindowSize:        *window,
		DeleteOldestFirst: *oldestFirst,
	})

	f, err := os.Create(*out)
	if err != nil {
		fatal("create: %v", err)
	}
	w := bufio.NewWriter(f)
	for i := 0; i < *ops; i++ {
		if err := writeOp(w, g.Next()); err != nil {
			fatal("write: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		fatal("flush: %v", err)
	}
	if err := f.Close(); err != nil {
		fatal("close: %v", err)
	}
	fmt.Printf("wrote %d ops to %s\n", *ops, *out)
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	in := fs.String("in", "trace.bin", "input trace file")
	dir := fs.String("dir", "acheron-replay", "store directory")
	dpt := fs.Duration("dpt", 0, "delete persistence threshold")
	policyName := fs.String("policy", "", "compaction policy: leveled, size-tiered, or lazy-leveling")
	kiwi := fs.Bool("kiwi", false, "KiWi layout + eager range deletes")
	fs.Parse(args)

	opts := core.Options{
		DeleteKeyFunc: workload.ExtractDeleteKey,
		Compaction:    compaction.Options{DPT: base.Duration(*dpt)},
	}
	if *dpt > 0 {
		opts.Compaction.Picker = compaction.PickFADE
	}
	if *policyName != "" {
		kind, ok := compaction.ParsePolicyKind(*policyName)
		if !ok {
			fatal("-policy: unknown policy %q (want leveled, size-tiered, or lazy-leveling)", *policyName)
		}
		opts.Compaction.Policy = kind
	}
	if *kiwi {
		opts.PagesPerTile = 4
		opts.EagerRangeDeletes = true
	}
	db, err := core.Open(*dir, opts)
	if err != nil {
		fatal("open: %v", err)
	}
	defer db.Close()

	f, err := os.Open(*in)
	if err != nil {
		fatal("open trace: %v", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)

	start := time.Now()
	n := 0
	for {
		op, err := readOp(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fatal("trace read at op %d: %v", n, err)
		}
		switch op.Kind {
		case workload.OpInsert, workload.OpUpdate:
			err = db.Put(op.Key, op.Value)
		case workload.OpDelete:
			err = db.Delete(op.Key)
		case workload.OpLookup:
			_, err = db.Get(op.Key)
			if errors.Is(err, core.ErrNotFound) {
				err = nil
			}
		case workload.OpScan:
			var it *core.Iter
			it, err = db.NewIter(core.IterOptions{})
			if err == nil {
				cnt := 0
				for ok := it.SeekGE(op.Key); ok && cnt < op.ScanLen; ok = it.Next() {
					cnt++
				}
				err = it.Close()
			}
		case workload.OpRangeDelete:
			err = db.DeleteSecondaryRange(op.Lo, op.Hi)
		}
		if err != nil {
			fatal("replay op %d (%s): %v", n, op.Kind, err)
		}
		n++
	}
	elapsed := time.Since(start)
	fmt.Printf("replayed %d ops in %v (%.0f ops/s)\n", n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds())
	fmt.Println(db.Stats())
}

func stats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	in := fs.String("in", "trace.bin", "input trace file")
	fs.Parse(args)
	f, err := os.Open(*in)
	if err != nil {
		fatal("open: %v", err)
	}
	defer f.Close()
	r := bufio.NewReader(f)
	counts := map[workload.OpKind]int{}
	var keyBytes, valBytes int64
	total := 0
	for {
		op, err := readOp(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			fatal("read: %v", err)
		}
		counts[op.Kind]++
		keyBytes += int64(len(op.Key))
		valBytes += int64(len(op.Value))
		total++
	}
	fmt.Printf("%d ops, %d key bytes, %d value bytes\n", total, keyBytes, valBytes)
	for _, k := range []workload.OpKind{
		workload.OpInsert, workload.OpUpdate, workload.OpDelete,
		workload.OpLookup, workload.OpScan, workload.OpRangeDelete,
	} {
		if counts[k] > 0 {
			fmt.Printf("  %-12s %8d (%.1f%%)\n", k, counts[k], 100*float64(counts[k])/float64(total))
		}
	}
}
